"""Unit and property tests for page placement policies and the page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressMap
from repro.memory.page_table import PageTable
from repro.memory.placement import (
    FineGrainInterleave,
    FirstTouchPlacement,
    RoundRobinPagePlacement,
    make_placement,
)


class TestInterleave:
    def test_line_granularity(self):
        policy = FineGrainInterleave(4)
        assert [policy.partition_of_line(line) for line in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_requester_is_ignored(self):
        policy = FineGrainInterleave(4)
        assert policy.partition_of_page(7, 0) == policy.partition_of_page(7, 3)


class TestFirstTouch:
    def test_first_toucher_wins(self):
        policy = FirstTouchPlacement(4)
        assert policy.partition_of_page(10, 2) == 2
        # Later requesters see the original mapping (Figure 11 semantics).
        assert policy.partition_of_page(10, 0) == 2
        assert policy.first_touch_allocations == 1

    def test_distinct_pages_follow_their_touchers(self):
        policy = FirstTouchPlacement(4)
        for page in range(8):
            assert policy.partition_of_page(page, page % 4) == page % 4
        assert policy.pages_mapped == 8

    def test_histogram(self):
        policy = FirstTouchPlacement(2)
        policy.partition_of_page(0, 0)
        policy.partition_of_page(1, 1)
        policy.partition_of_page(2, 1)
        assert policy.partition_histogram() == {0: 1, 1: 2}

    def test_reset_forgets(self):
        policy = FirstTouchPlacement(4)
        policy.partition_of_page(5, 3)
        policy.reset()
        assert policy.partition_of_page(5, 1) == 1


class TestRoundRobin:
    def test_allocation_order(self):
        policy = RoundRobinPagePlacement(3)
        assert policy.partition_of_page(100, 2) == 0
        assert policy.partition_of_page(200, 2) == 1
        assert policy.partition_of_page(300, 2) == 2
        assert policy.partition_of_page(400, 2) == 0
        # Stable on re-reference.
        assert policy.partition_of_page(100, 0) == 0


class TestRegistry:
    def test_make_placement(self):
        assert isinstance(make_placement("interleave", 4), FineGrainInterleave)
        assert isinstance(make_placement("first_touch", 4), FirstTouchPlacement)
        assert isinstance(make_placement("round_robin_page", 4), RoundRobinPagePlacement)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("nope", 4)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError, match="n_partitions"):
            FineGrainInterleave(0)


class TestPageTable:
    def test_interleave_resolution(self):
        table = PageTable(AddressMap(page_bytes=2048), FineGrainInterleave(4))
        assert table.home_partition(5, 0) == 1
        assert table.remote_resolutions == 1
        assert table.home_partition(4, 0) == 0
        assert table.local_resolutions == 1
        assert table.locality_fraction == 0.5

    def test_first_touch_keeps_whole_page_together(self):
        amap = AddressMap(page_bytes=2048)  # 16 lines/page
        table = PageTable(amap, FirstTouchPlacement(4))
        first = table.home_partition(0, 3)
        assert first == 3
        for line in range(1, 16):
            assert table.home_partition(line, 0) == 3  # same page, same home
        assert table.home_partition(16, 0) == 0  # next page, new first toucher

    def test_reset(self):
        table = PageTable(AddressMap(), FirstTouchPlacement(2))
        table.home_partition(0, 1)
        table.reset()
        assert table.local_resolutions == 0
        assert table.home_partition(0, 0) == 0


@settings(max_examples=50, deadline=None)
@given(
    touches=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=200,
    )
)
def test_first_touch_is_stable(touches):
    """Property: a page's partition never changes after its first touch."""
    policy = FirstTouchPlacement(4)
    seen = {}
    for page, requester in touches:
        partition = policy.partition_of_page(page, requester)
        if page in seen:
            assert partition == seen[page]
        else:
            assert partition == requester
            seen[page] = partition
    assert policy.pages_mapped == len(seen)


@settings(max_examples=50, deadline=None)
@given(pages=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100, unique=True))
def test_round_robin_balances(pages):
    """Property: round-robin spreads unique pages within 1 of each other."""
    policy = RoundRobinPagePlacement(4)
    counts = {p: 0 for p in range(4)}
    for page in pages:
        counts[policy.partition_of_page(page, 0)] += 1
    assert max(counts.values()) - min(counts.values()) <= 1
