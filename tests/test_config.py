"""Unit tests for configuration dataclasses and presets."""

import json
from dataclasses import replace

import pytest

from repro.core.config import (
    MEMORY_SCALE,
    CacheConfig,
    GPMConfig,
    SMConfig,
    SystemConfig,
    scaled_bytes,
)
from repro.core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from repro.memory.cache import AllocationPolicy


class TestScaledBytes:
    def test_applies_scale(self):
        assert scaled_bytes(32 << 20, 1 / 32) == 1 << 20

    def test_floor_is_one_line(self):
        assert scaled_bytes(1, 1 / 32) == 128


class TestCacheConfig:
    def test_scaled_copy(self):
        config = CacheConfig(size_bytes=16 << 20)
        scaled = config.scaled(1 / 32)
        assert scaled.size_bytes == 512 << 10
        assert scaled.ways == config.ways

    def test_zero_stays_zero(self):
        assert CacheConfig(size_bytes=0).scaled().size_bytes == 0


class TestSystemConfigValidation:
    def test_rejects_zero_gpms(self):
        config = baseline_mcm_gpu()
        with pytest.raises(ValueError, match="n_gpms"):
            SystemConfig(name="x", n_gpms=0, gpm=config.gpm)

    def test_rejects_zero_link_bandwidth_multi_module(self):
        config = baseline_mcm_gpu()
        with pytest.raises(ValueError, match="link bandwidth"):
            SystemConfig(name="x", n_gpms=4, gpm=config.gpm, link_bandwidth=0.0)

    def test_rejects_unknown_scheduler(self):
        config = baseline_mcm_gpu()
        with pytest.raises(ValueError, match="scheduler"):
            SystemConfig(name="x", n_gpms=4, gpm=config.gpm, scheduler="fifo")


class TestBaselinePreset:
    def test_table3_parameters(self):
        config = baseline_mcm_gpu()
        assert config.n_gpms == 4
        assert config.total_sms == 256
        assert config.gpm.sm.max_warps == 64
        assert config.total_dram_bandwidth == 3072.0
        assert config.link_bandwidth == 768.0
        assert config.hop_latency == 32.0
        assert config.scheduler == "centralized"
        assert config.placement == "interleave"
        assert config.gpm.l15 is None

    def test_l2_is_scaled_16mb(self):
        config = baseline_mcm_gpu()
        assert config.total_l2_bytes == int(16 * (1 << 20) * MEMORY_SCALE)

    def test_max_resident_ctas(self):
        assert baseline_mcm_gpu().max_resident_ctas == 1024


class TestL15Presets:
    def test_iso_transistor_16mb(self):
        """16 MB L1.5 leaves only the 32KB-per-GPM residual L2."""
        config = mcm_gpu_with_l15(16, remote_only=True)
        assert config.total_l15_bytes == int(16 * (1 << 20) * MEMORY_SCALE)
        assert config.total_l2_bytes < baseline_mcm_gpu().total_l2_bytes / 100
        assert config.gpm.l15.allocation is AllocationPolicy.REMOTE_ONLY

    def test_iso_transistor_8mb_keeps_half_l2(self):
        config = mcm_gpu_with_l15(8, remote_only=True)
        assert config.total_l15_bytes == int(8 * (1 << 20) * MEMORY_SCALE)
        assert config.total_l2_bytes == pytest.approx(
            baseline_mcm_gpu().total_l2_bytes / 2, rel=0.01
        )

    def test_total_cache_conserved_iso(self):
        """Iso-transistor: L1.5 + L2 equals the baseline L2 (plus residual)."""
        baseline_l2 = baseline_mcm_gpu().total_l2_bytes
        for mb in (8, 16):
            config = mcm_gpu_with_l15(mb)
            total = config.total_l15_bytes + config.total_l2_bytes
            assert total <= baseline_l2 * 1.01 + 4096

    def test_non_iso_32mb(self):
        config = mcm_gpu_with_l15(32)
        assert config.total_l15_bytes == int(32 * (1 << 20) * MEMORY_SCALE)

    def test_rejects_unlisted_capacity(self):
        with pytest.raises(ValueError, match="8/16/32"):
            mcm_gpu_with_l15(12)

    def test_all_allocation_variant(self):
        config = mcm_gpu_with_l15(16, remote_only=False)
        assert config.gpm.l15.allocation is AllocationPolicy.ALL


class TestOptimizedPreset:
    def test_all_three_optimizations(self):
        config = optimized_mcm_gpu()
        assert config.scheduler == "distributed"
        assert config.placement == "first_touch"
        assert config.gpm.l15 is not None
        assert config.gpm.l15.allocation is AllocationPolicy.REMOTE_ONLY

    def test_default_is_8mb_split(self):
        config = optimized_mcm_gpu()
        assert config.total_l15_bytes == int(8 * (1 << 20) * MEMORY_SCALE)


class TestMonolithicPreset:
    def test_proportional_scaling_rule(self):
        """Figure 2: 384 GB/s and 2 MB L2 per 32 SMs."""
        for n_sms in (32, 128, 256):
            config = monolithic_gpu(n_sms)
            assert config.total_sms == n_sms
            assert config.total_dram_bandwidth == 384.0 * (n_sms // 32)

    def test_structurally_sliced_with_on_die_fabric(self):
        """Monolithic dies keep the 4-slice structure behind a huge fabric."""
        config = monolithic_gpu(256)
        assert config.n_gpms == 4
        assert config.link_bandwidth > 10_000
        assert config.hop_latency < baseline_mcm_gpu().hop_latency
        assert config.link_tier == "chip"

    def test_256_sm_matches_mcm_memory_system(self):
        mono = monolithic_gpu(256)
        mcm = baseline_mcm_gpu()
        assert mono.total_dram_bandwidth == mcm.total_dram_bandwidth
        assert mono.total_l2_bytes == pytest.approx(mcm.total_l2_bytes, rel=0.01)

    def test_rejects_bad_sm_count(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            monolithic_gpu(100)


class TestMultiGPUPreset:
    def test_baseline_flavor(self):
        config = multi_gpu(optimized=False)
        assert config.n_gpms == 2
        assert config.total_sms == 256
        assert config.total_dram_bandwidth == 3072.0
        assert config.link_bandwidth == 256.0
        assert config.link_tier == "board"
        assert config.scheduler == "distributed"
        assert config.placement == "first_touch"
        assert config.gpm.l15 is None

    def test_optimized_adds_remote_cache(self):
        config = multi_gpu(optimized=True)
        assert config.gpm.l15 is not None
        assert config.gpm.l15.allocation is AllocationPolicy.REMOTE_ONLY
        baseline = multi_gpu(optimized=False)
        assert config.total_l15_bytes + config.total_l2_bytes == pytest.approx(
            baseline.total_l2_bytes, rel=0.01
        )

    def test_board_latency_exceeds_package(self):
        assert multi_gpu().hop_latency > baseline_mcm_gpu().hop_latency


class TestDigest:
    def test_digest_distinguishes_configs(self):
        digests = {
            baseline_mcm_gpu().digest(),
            baseline_mcm_gpu(link_bandwidth=384.0).digest(),
            mcm_gpu_with_l15(16).digest(),
            mcm_gpu_with_l15(8).digest(),
            optimized_mcm_gpu().digest(),
            monolithic_gpu(128).digest(),
            multi_gpu().digest(),
        }
        assert len(digests) == 7

    def test_digest_stable(self):
        assert baseline_mcm_gpu().digest() == baseline_mcm_gpu().digest()

    def test_digest_covers_every_behavioral_knob(self):
        """Knobs that change simulation results must change the digest.

        These five were historically missing from the digest string and
        could silently serve stale cache entries."""
        base = baseline_mcm_gpu()
        variants = [
            replace(base, line_bytes=64),
            replace(base, gpm=replace(base.gpm, xbar_latency=base.gpm.xbar_latency + 10)),
            replace(
                base,
                gpm=replace(base.gpm, l15_miss_penalty=base.gpm.l15_miss_penalty + 10),
            ),
            replace(base, gpm=replace(base.gpm, sm=replace(base.gpm.sm, warp_groups=2))),
            replace(
                base,
                gpm=replace(base.gpm, sm=replace(base.gpm.sm, max_resident_ctas=8)),
            ),
        ]
        digests = {base.digest()} | {variant.digest() for variant in variants}
        assert len(digests) == len(variants) + 1

    def test_digest_includes_name(self):
        """Names stay in the digest: cached results carry ``system_name``
        and the golden store keys fidelity snapshots by it."""
        base = baseline_mcm_gpu()
        assert replace(base, name="renamed").digest() != base.digest()


class TestSerialization:
    def test_round_trip_all_presets(self):
        presets = [
            baseline_mcm_gpu(),
            mcm_gpu_with_l15(16, remote_only=True),
            optimized_mcm_gpu(),
            monolithic_gpu(128),
            multi_gpu(optimized=True),
        ]
        for config in presets:
            restored = SystemConfig.from_dict(config.to_dict())
            assert restored == config
            assert restored.digest() == config.digest()

    def test_round_trip_survives_json(self):
        config = optimized_mcm_gpu()
        payload = json.loads(json.dumps(config.to_dict()))
        assert SystemConfig.from_dict(payload) == config

    def test_l15_none_round_trips(self):
        config = baseline_mcm_gpu()
        data = config.to_dict()
        assert data["gpm"]["l15"] is None
        assert SystemConfig.from_dict(data).gpm.l15 is None

    def test_enums_serialized_as_strings(self):
        data = mcm_gpu_with_l15(16).to_dict()
        assert data["gpm"]["l15"]["write_policy"] == "write_through"
        assert isinstance(data["gpm"]["l15"]["allocation"], str)

    def test_unknown_keys_rejected(self):
        data = baseline_mcm_gpu().to_dict()
        data["no_such_field"] = 1
        with pytest.raises(ValueError, match="unknown"):
            SystemConfig.from_dict(data)


class TestPolicyValidation:
    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            replace(baseline_mcm_gpu(), placement="best_effort")

    def test_rejects_unknown_link_tier(self):
        with pytest.raises(ValueError, match="link_tier"):
            replace(baseline_mcm_gpu(), link_tier="wafer")

    def test_all_valid_placements_accepted(self):
        for policy in ("interleave", "first_touch", "round_robin_page", "migrating_first_touch"):
            assert replace(baseline_mcm_gpu(), placement=policy).placement == policy
