"""Unit tests for trace records and packing helpers."""

import pytest

from repro.workloads.trace import (
    KernelLaunch,
    TraceRecord,
    records_from_arrays,
    write_period_from_fraction,
)


class TestWritePeriod:
    def test_zero_fraction(self):
        assert write_period_from_fraction(0.0) == 0

    def test_common_fractions(self):
        assert write_period_from_fraction(0.5) == 2
        assert write_period_from_fraction(0.33) == 3
        assert write_period_from_fraction(0.25) == 4
        assert write_period_from_fraction(0.1) == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="write_fraction"):
            write_period_from_fraction(1.0)
        with pytest.raises(ValueError, match="write_fraction"):
            write_period_from_fraction(-0.1)


class TestRecordsFromArrays:
    def test_packs_batches(self):
        records = records_from_arrays(list(range(10)), 0, 4, 7.0)
        assert len(records) == 3
        assert records[0].reads == (0, 1, 2, 3)
        assert records[2].reads == (8, 9)  # partial tail kept
        assert all(record.compute_cycles == 7.0 for record in records)

    def test_write_period_marks_stores(self):
        records = records_from_arrays(list(range(8)), 4, 4, 1.0)
        # Accesses 4 and 8 (1-indexed) are stores.
        assert records[0].writes == (3,)
        assert records[1].writes == (7,)
        assert records[0].reads == (0, 1, 2)

    def test_all_access_counts_preserved(self):
        lines = list(range(23))
        records = records_from_arrays(lines, 3, 5, 0.0)
        total = sum(record.n_accesses for record in records)
        assert total == 23

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="accesses_per_record"):
            records_from_arrays([1], 0, 0, 1.0)


class TestTraceRecord:
    def test_n_accesses(self):
        record = TraceRecord(1.0, (1, 2), (3,))
        assert record.n_accesses == 3


class TestKernelLaunch:
    def test_validates_sizes(self):
        with pytest.raises(ValueError, match="n_ctas"):
            KernelLaunch(n_ctas=0, groups_per_cta=1, trace_fn=lambda c: [])
        with pytest.raises(ValueError, match="groups_per_cta"):
            KernelLaunch(n_ctas=1, groups_per_cta=0, trace_fn=lambda c: [])
