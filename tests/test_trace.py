"""Unit tests for trace records and packing helpers."""

import numpy as np
import pytest

from repro.workloads.trace import (
    ColumnarCTATrace,
    KernelLaunch,
    TraceRecord,
    WalkGeometry,
    records_from_arrays,
    write_period_from_fraction,
)


class TestWritePeriod:
    def test_zero_fraction(self):
        assert write_period_from_fraction(0.0) == 0

    def test_common_fractions(self):
        assert write_period_from_fraction(0.5) == 2
        assert write_period_from_fraction(0.33) == 3
        assert write_period_from_fraction(0.25) == 4
        assert write_period_from_fraction(0.1) == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="write_fraction"):
            write_period_from_fraction(1.0)
        with pytest.raises(ValueError, match="write_fraction"):
            write_period_from_fraction(-0.1)


class TestRecordsFromArrays:
    def test_packs_batches(self):
        records = records_from_arrays(list(range(10)), 0, 4, 7.0)
        assert len(records) == 3
        assert records[0].reads == (0, 1, 2, 3)
        assert records[2].reads == (8, 9)  # partial tail kept
        assert all(record.compute_cycles == 7.0 for record in records)

    def test_write_period_marks_stores(self):
        records = records_from_arrays(list(range(8)), 4, 4, 1.0)
        # Accesses 4 and 8 (1-indexed) are stores.
        assert records[0].writes == (3,)
        assert records[1].writes == (7,)
        assert records[0].reads == (0, 1, 2)

    def test_all_access_counts_preserved(self):
        lines = list(range(23))
        records = records_from_arrays(lines, 3, 5, 0.0)
        total = sum(record.n_accesses for record in records)
        assert total == 23

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="accesses_per_record"):
            records_from_arrays([1], 0, 0, 1.0)


class TestTraceRecord:
    def test_n_accesses(self):
        record = TraceRecord(1.0, (1, 2), (3,))
        assert record.n_accesses == 3


class TestKernelLaunch:
    def test_validates_sizes(self):
        with pytest.raises(ValueError, match="n_ctas"):
            KernelLaunch(n_ctas=0, groups_per_cta=1, trace_fn=lambda c: [])
        with pytest.raises(ValueError, match="groups_per_cta"):
            KernelLaunch(n_ctas=1, groups_per_cta=0, trace_fn=lambda c: [])


class TestColumnarCTATrace:
    def _trace(self, **overrides):
        kwargs = dict(
            n_groups=2, write_period=3, accesses_per_record=5, compute_cycles=2.0
        )
        kwargs.update(overrides)
        lines = (np.arange(46, dtype=np.int64) * 7) % 31
        return lines, ColumnarCTATrace.from_flat(lines, **kwargs)

    def test_from_flat_matches_records_from_arrays_per_group(self):
        lines, trace = self._trace()
        per_group = lines.size // 2
        for group in range(2):
            chunk = lines[group * per_group : (group + 1) * per_group].tolist()
            assert trace.base_groups()[group] == records_from_arrays(
                chunk, 3, 5, 2.0
            )

    def test_sequence_protocol_views_base_groups(self):
        _, trace = self._trace()
        assert len(trace) == 2
        assert list(iter(trace)) == trace.base_groups()
        assert trace[1] == trace.base_groups()[1]

    def test_validation(self):
        lines = np.arange(10, dtype=np.int64)
        with pytest.raises(ValueError, match="accesses_per_record"):
            ColumnarCTATrace.from_flat(lines, 2, 0, 0, 1.0)
        with pytest.raises(ValueError, match="n_groups"):
            ColumnarCTATrace.from_flat(lines, 0, 0, 4, 1.0)
        with pytest.raises(ValueError, match="equal groups"):
            ColumnarCTATrace.from_flat(lines, 3, 0, 4, 1.0)


PACKED_INTERLEAVED = WalkGeometry(
    packed=True,
    n_l1_sets=8,
    line_interleaved=True,
    n_partitions=4,
    lines_per_page=16,
    issue_throughput=4.0,
    n_l2_sets=16,
    n_l15_sets=0,
)
PACKED_PAGED = PACKED_INTERLEAVED._replace(line_interleaved=False, n_l15_sets=32)
UNPACKED = PACKED_INTERLEAVED._replace(packed=False)


class TestFastGroups:
    def _trace(self):
        lines = (np.arange(24, dtype=np.int64) * 5) % 97
        return ColumnarCTATrace.from_flat(
            lines, n_groups=2, write_period=4, accesses_per_record=6,
            compute_cycles=3.0,
        )

    def test_packed_quintuples_carry_geometry_indices(self):
        trace = self._trace()
        groups = trace.fast_groups(PACKED_INTERLEAVED)
        base = trace.base_groups()
        for group, records in zip(groups, base):
            for packed, record in zip(group, records):
                compute_cycles, busy, reads, writes = packed
                assert compute_cycles == record.compute_cycles
                assert busy == (
                    3.0 + len(record.reads) + len(record.writes)
                ) / 4.0
                assert tuple(t[0] for t in reads) == record.reads
                assert tuple(t[0] for t in writes) == record.writes
                for line, l1_set, home, l2_set, l15_set in reads + writes:
                    assert l1_set == line % 8
                    assert home == line % 4  # fine-grain interleaving
                    assert l2_set == line % 16
                    assert l15_set == 0  # level absent -> placeholder column

    def test_paged_homing_uses_page_index(self):
        trace = self._trace()
        groups = trace.fast_groups(PACKED_PAGED)
        for group in groups:
            for _, _, reads, writes in group:
                for line, _, home, _, l15_set in reads + writes:
                    assert home == line // 16
                    assert l15_set == line % 32

    def test_unpacked_flavor_keeps_plain_addresses(self):
        trace = self._trace()
        groups = trace.fast_groups(UNPACKED)
        for group, records in zip(groups, trace.base_groups()):
            for (compute_cycles, busy, reads, writes), record in zip(
                group, records
            ):
                assert reads == record.reads
                assert writes == record.writes

    def test_cache_is_per_geometry_and_stable(self):
        trace = self._trace()
        first_a = trace.fast_groups(PACKED_INTERLEAVED)
        first_b = trace.fast_groups(PACKED_PAGED)
        # Interleaving geometries (a benchmark sweeping configs over one
        # memoized trace) must not repack: each geometry keeps its slot.
        assert trace.fast_groups(PACKED_INTERLEAVED) is first_a
        assert trace.fast_groups(PACKED_PAGED) is first_b
        assert first_a is not first_b
