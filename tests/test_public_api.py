"""Tests for the package's public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_workflow(self):
        """The README quickstart snippet works end-to-end (shrunken)."""
        from repro.workloads.suite import spec_by_name
        from repro.workloads.synthetic import SyntheticWorkload

        workload = SyntheticWorkload(spec_by_name("CFD").scaled_down(0.05))
        baseline = repro.simulate(workload, repro.baseline_mcm_gpu())
        optimized = repro.simulate(workload, repro.optimized_mcm_gpu())
        assert optimized.speedup_over(baseline) > 0

    def test_subpackage_imports(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.interconnect
        import repro.memory
        import repro.multigpu
        import repro.sched
        import repro.sim
        import repro.workloads

        assert repro.experiments.EXPERIMENTS

    def test_memory_exports(self):
        from repro.memory import (
            AddressMap,
            BandwidthPipe,
            DRAMPartition,
            PageTable,
            SetAssocCache,
        )

        assert all((AddressMap, BandwidthPipe, DRAMPartition, PageTable, SetAssocCache))

    def test_experiment_registry_covers_every_artifact(self):
        from repro.experiments import EXPERIMENTS

        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig4", "fig6", "fig7", "fig9", "fig10",
            "fig13", "fig14", "fig15", "fig16", "fig17",
            "topology", "gpm-scaling", "ml-workloads", "sched-ablation",
            "page-ablation", "migration-ablation", "scaleout",
        }
        assert set(EXPERIMENTS) == expected
        for module, entry in EXPERIMENTS.values():
            assert hasattr(module, entry)
            assert hasattr(module, "report")
