"""Unit and property tests for the dynamic CTA scheduler extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu
from repro.sched.distributed import make_scheduler
from repro.sched.dynamic import DynamicScheduler


def small_system(n_gpms=4, sms_per_gpm=4):
    return build_system(baseline_mcm_gpu(n_gpms=n_gpms, sms_per_gpm=sms_per_gpm))


def drain(scheduler, system, limit=10_000):
    dispatched = []
    for _ in range(limit):
        progress = False
        for sm in system.all_sms():
            cta = scheduler.next_cta(sm)
            if cta is not None:
                dispatched.append(cta)
                progress = True
        if not progress:
            break
    return dispatched


class TestConstruction:
    def test_registered_in_factory(self):
        system = small_system()
        assert isinstance(make_scheduler("dynamic", system), DynamicScheduler)

    def test_rejects_bad_batch_count(self):
        with pytest.raises(ValueError, match="batches_per_gpm"):
            DynamicScheduler(small_system(), batches_per_gpm=0)

    def test_config_accepts_dynamic(self):
        from dataclasses import replace

        config = replace(baseline_mcm_gpu(name="dyn"), scheduler="dynamic")
        assert config.scheduler == "dynamic"


class TestBatching:
    def test_covers_every_cta_exactly_once(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=4)
        scheduler.start_kernel(100)
        dispatched = drain(scheduler, system)
        assert sorted(dispatched) == list(range(100))
        assert scheduler.exhausted

    def test_batches_are_contiguous_ranges(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=2, steal=False)
        scheduler.start_kernel(64)
        # With 4 GPMs x 2 batches, batch size is 8: GPM 0 holds batches
        # starting at 0 and 32 (round-robin by batch index).
        first_eight = [scheduler.next_cta(system.gpms[0].sms[0]) for _ in range(8)]
        assert first_eight == list(range(8))
        next_eight = [scheduler.next_cta(system.gpms[0].sms[0]) for _ in range(8)]
        assert next_eight == list(range(32, 40))

    def test_pending_accounting(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=1, steal=False)
        scheduler.start_kernel(40)
        assert scheduler.pending_per_gpm() == [10, 10, 10, 10]
        scheduler.next_cta(system.gpms[2].sms[0])
        assert scheduler.pending_per_gpm() == [10, 10, 9, 10]


class TestStealing:
    def test_idle_gpm_steals_from_loaded_one(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=2, steal=True)
        scheduler.start_kernel(64)
        sm0 = system.gpms[0].sms[0]
        # Drain GPM 0's own 16 CTAs...
        own = [scheduler.next_cta(sm0) for _ in range(16)]
        assert all(cta is not None for cta in own)
        # ...then the next request must steal from another GPM.
        stolen = scheduler.next_cta(sm0)
        assert stolen is not None
        assert scheduler.steals >= 1

    def test_no_steal_mode_returns_none(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=1, steal=False)
        scheduler.start_kernel(8)  # 2 CTAs per GPM
        sm0 = system.gpms[0].sms[0]
        assert scheduler.next_cta(sm0) is not None
        assert scheduler.next_cta(sm0) is not None
        assert scheduler.next_cta(sm0) is None
        assert scheduler.steals == 0

    def test_stealing_still_covers_everything(self):
        system = small_system()
        scheduler = DynamicScheduler(system, batches_per_gpm=3, steal=True)
        scheduler.start_kernel(97)
        dispatched = drain(scheduler, system)
        assert sorted(dispatched) == list(range(97))


class TestEndToEnd:
    def test_dynamic_scheduler_runs_imbalanced_workload(self):
        """Imbalanced work should finish no slower than static distribution."""
        from dataclasses import replace

        from repro.sim.simulator import simulate
        from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec

        spec = WorkloadSpec(
            name="imbalanced",
            category=Category.M_INTENSIVE,
            pattern="streaming",
            n_ctas=256,
            groups_per_cta=2,
            records_per_group=4,
            accesses_per_record=4,
            kernel_iterations=1,
            footprint_bytes=1 << 20,
            imbalance=2.0,
        )
        workload = SyntheticWorkload(spec)
        static_cfg = replace(
            baseline_mcm_gpu(name="static-ds"), scheduler="distributed"
        )
        dynamic_cfg = replace(baseline_mcm_gpu(name="dynamic-ds"), scheduler="dynamic")
        static = simulate(workload, static_cfg)
        dynamic = simulate(workload, dynamic_cfg)
        assert dynamic.ctas == static.ctas == 256
        assert dynamic.cycles <= static.cycles * 1.05


@settings(max_examples=30, deadline=None)
@given(
    n_ctas=st.integers(min_value=1, max_value=300),
    batches=st.integers(min_value=1, max_value=6),
    steal=st.booleans(),
)
def test_dynamic_dispatches_each_cta_once(n_ctas, batches, steal):
    """Property: every CTA dispatched exactly once for any configuration."""
    system = small_system()
    scheduler = DynamicScheduler(system, batches_per_gpm=batches, steal=steal)
    scheduler.start_kernel(n_ctas)
    dispatched = drain(scheduler, system)
    assert sorted(dispatched) == list(range(n_ctas))
