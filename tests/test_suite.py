"""Unit tests for the 48-benchmark suite definition."""

import pytest

from repro.workloads.suite import (
    MAX_FOOTPRINT_BYTES,
    MIN_FOOTPRINT_BYTES,
    all_specs,
    c_intensive_specs,
    limited_parallelism_specs,
    m_intensive_specs,
    make_workload,
    scaled_footprint,
    spec_by_name,
    specs_by_category,
    suite_workloads,
)
from repro.workloads.synthetic import Category

TABLE4_NAMES = [
    "AMG", "NN-Conv", "BFS", "CFD", "CoMD", "Kmeans", "Lulesh1", "Lulesh2",
    "Lulesh3", "MiniAMR", "MnCtct", "MST", "Nekbone1", "Nekbone2",
    "Srad-v2", "SSSP", "Stream",
]


class TestComposition:
    def test_paper_counts(self):
        """Section 4: 48 workloads = 17 M + 16 C + 15 limited."""
        assert len(m_intensive_specs()) == 17
        assert len(c_intensive_specs()) == 16
        assert len(limited_parallelism_specs()) == 15
        assert len(all_specs()) == 48

    def test_names_unique(self):
        names = [spec.name for spec in all_specs()]
        assert len(set(names)) == len(names)

    def test_table4_names_present_in_order(self):
        assert [spec.name for spec in m_intensive_specs()] == TABLE4_NAMES

    def test_categories_consistent(self):
        grouped = specs_by_category()
        for category, specs in grouped.items():
            assert all(spec.category == category for spec in specs)

    def test_paper_footprints_recorded(self):
        for spec in m_intensive_specs():
            assert spec.paper_footprint_mb is not None
        assert spec_by_name("Stream").paper_footprint_mb == 3072


class TestParallelism:
    def test_high_parallelism_fills_256_sm_gpu(self):
        """High-parallelism specs must oversubscribe 256 SMs x 4 CTA slots."""
        for spec in m_intensive_specs() + c_intensive_specs():
            assert spec.n_ctas >= 1024, spec.name

    def test_limited_parallelism_cannot_fill(self):
        for spec in limited_parallelism_specs():
            assert spec.n_ctas < 512, spec.name


class TestFootprints:
    def test_scaled_footprint_clamps(self):
        assert scaled_footprint(0.001) == MIN_FOOTPRINT_BYTES
        assert scaled_footprint(1e6) == MAX_FOOTPRINT_BYTES
        assert MIN_FOOTPRINT_BYTES < scaled_footprint(96) < MAX_FOOTPRINT_BYTES

    def test_all_footprints_within_bounds(self):
        for spec in all_specs():
            assert MIN_FOOTPRINT_BYTES <= spec.footprint_bytes <= MAX_FOOTPRINT_BYTES


class TestLookup:
    def test_spec_by_name(self):
        assert spec_by_name("CFD").category is Category.M_INTENSIVE

    def test_spec_by_name_unknown(self):
        with pytest.raises(KeyError, match="no workload"):
            spec_by_name("DOOM")

    def test_make_workload_from_name_and_spec(self):
        by_name = make_workload("Stream")
        by_spec = make_workload(spec_by_name("Stream"))
        assert by_name.digest() == by_spec.digest()


class TestSuiteWorkloads:
    def test_category_filter(self):
        limited = suite_workloads(Category.LIMITED_PARALLELISM)
        assert len(limited) == 15
        assert all(w.category is Category.LIMITED_PARALLELISM for w in limited)

    def test_fast_factor_shrinks(self):
        full = suite_workloads()
        fast = suite_workloads(fast_factor=0.1)
        assert len(fast) == len(full)
        for big, small in zip(full, fast):
            assert small.spec.n_ctas <= big.spec.n_ctas

    def test_every_workload_generates_a_valid_first_kernel(self):
        for workload in suite_workloads(fast_factor=0.05):
            kernel = next(iter(workload.kernels()))
            trace = kernel.trace_fn(0)
            assert len(trace) == kernel.groups_per_cta
            assert all(record.n_accesses > 0 for group in trace for record in group)
