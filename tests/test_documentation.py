"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.experiments",
    "repro.explore",
    "repro.ingest",
    "repro.interconnect",
    "repro.memory",
    "repro.multigpu",
    "repro.parallel",
    "repro.sched",
    "repro.serve",
    "repro.sim",
    "repro.workloads",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, prefix=package_name + "."):
            yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__ for module in iter_modules() if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        """Methods must be documented directly or inherit a documented
        signature from a base class (overrides of abstract methods)."""
        undocumented = []
        for module in iter_modules():
            for _, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(method) or isinstance(method, property)):
                        continue
                    doc = (
                        method.fget.__doc__
                        if isinstance(method, property) and method.fget
                        else getattr(method, "__doc__", None)
                    )
                    if (doc or "").strip():
                        continue
                    inherited = any(
                        (getattr(getattr(base, method_name, None), "__doc__", None) or "").strip()
                        for base in member.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(f"{module.__name__}.{member.__name__}.{method_name}")
        assert not undocumented, f"undocumented methods: {undocumented}"
