"""Edge-case and stress tests for the engine and memory system."""

import pytest

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, multi_gpu
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import simulate
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import KernelLaunch, TraceRecord, Workload


class ExplicitWorkload(Workload):
    name = "edge"

    def __init__(self, kernels, name="edge"):
        self._kernels = kernels
        self.name = name

    def kernels(self):
        return iter(self._kernels)

    def digest(self):
        return self.name


def tiny_config(**overrides):
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, **overrides)


class TestDegenerateTraces:
    def test_single_access_workload(self):
        kernel = KernelLaunch(1, 1, lambda c: [[TraceRecord(0.0, (0,), ())]], "k")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.loads == 1
        assert result.cycles > 0

    def test_store_only_workload(self):
        kernel = KernelLaunch(
            4, 1, lambda c: [[TraceRecord(0.0, (), (c, c + 100))]], "stores"
        )
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.stores == 8
        assert result.loads == 0
        # Drain accounting: the makespan covers the buffered stores.
        assert result.cycles >= 1.0

    def test_compute_only_workload(self):
        kernel = KernelLaunch(2, 2, lambda c: [[TraceRecord(50.0, (), ())], [TraceRecord(30.0, (), ())]], "c")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.accesses == 0
        assert result.cycles >= 50.0

    def test_empty_group_cta_retires(self):
        kernel = KernelLaunch(1, 2, lambda c: [[], [TraceRecord(1.0, (1,), ())]], "half")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.ctas == 1

    def test_fully_empty_cta_retires(self):
        kernel = KernelLaunch(2, 1, lambda c: [[]], "empty")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.ctas == 2
        assert result.cycles == 0.0

    def test_many_kernels(self):
        kernel = KernelLaunch(1, 1, lambda c: [[TraceRecord(1.0, (c,), ())]], "k")
        result = SimulationEngine(build_system(tiny_config())).run(
            ExplicitWorkload([kernel] * 10)
        )
        assert result.kernels == 10

    def test_empty_ctas_on_refill_path_do_not_strand_work(self):
        # Regression: an empty CTA dispatched from the refill path used to
        # release its slot without asking the scheduler for the next CTA.
        # With more empty CTAs than retirement events, the heap drained
        # with CTAs undispatched and the engine raised RuntimeError.
        config = tiny_config()
        slots = config.max_resident_ctas  # 8 SMs x 4 slots = 32
        n_ctas = slots + 3 * slots  # fill every slot, then 3 empties per slot

        def trace_fn(c):
            if c < slots:
                return [[TraceRecord(1.0, (c,), ())]]
            return [[]]

        kernel = KernelLaunch(n_ctas, 1, trace_fn, "refill-empties")
        result = SimulationEngine(build_system(config)).run(ExplicitWorkload([kernel]))
        assert result.ctas == n_ctas
        assert result.records == slots

    def test_all_empty_trace_kernel_completes(self):
        # Every CTA of the kernel is empty and there are far more CTAs
        # than resident slots; all must retire through the refill chain.
        config = tiny_config()
        n_ctas = 10 * config.max_resident_ctas
        kernel = KernelLaunch(n_ctas, 2, lambda c: [[], []], "all-empty")
        result = SimulationEngine(build_system(config)).run(ExplicitWorkload([kernel]))
        assert result.ctas == n_ctas
        assert result.records == 0
        assert result.cycles == 0.0


class TestRepeatedAddresses:
    def test_same_line_many_times_hits_l1(self):
        records = [[TraceRecord(0.0, (7, 7, 7, 7), ())]]
        kernel = KernelLaunch(1, 1, lambda c: records, "dup")
        system = build_system(tiny_config())
        result = SimulationEngine(system).run(ExplicitWorkload([kernel]))
        assert result.l1.hits == 3
        assert result.l1.misses == 1

    def test_load_then_store_same_line(self):
        records = [[TraceRecord(0.0, (5,), (5,))]]
        kernel = KernelLaunch(1, 1, lambda c: records, "rw")
        system = build_system(tiny_config())
        result = SimulationEngine(system).run(ExplicitWorkload([kernel]))
        assert result.loads == 1
        assert result.stores == 1


class TestDynamicSchedulerEndToEnd:
    def test_dynamic_runs_suite_workload(self):
        from dataclasses import replace

        spec = WorkloadSpec(
            name="dyn-e2e",
            category=Category.M_INTENSIVE,
            pattern="banded",
            n_ctas=64,
            groups_per_cta=2,
            records_per_group=3,
            accesses_per_record=3,
            kernel_iterations=2,
            footprint_bytes=512 * 1024,
        )
        config = replace(tiny_config(name="dyn-edge"), scheduler="dynamic")
        result = simulate(SyntheticWorkload(spec), config)
        assert result.ctas == 128  # 64 per kernel x 2


class TestMultiGPUEndToEnd:
    def test_small_multi_gpu_sim(self):
        spec = WorkloadSpec(
            name="mgpu-e2e",
            category=Category.M_INTENSIVE,
            pattern="streaming",
            n_ctas=64,
            groups_per_cta=2,
            records_per_group=3,
            accesses_per_record=3,
            kernel_iterations=1,
            footprint_bytes=512 * 1024,
        )
        config = multi_gpu(optimized=True, sms_per_gpu=8)
        result = simulate(SyntheticWorkload(spec), config)
        assert result.ctas == 64
        assert result.link_tier == "board"
        # Board links are narrow: any remote traffic is visible.
        assert result.cycles > 0


class TestL15AllPolicyPath:
    def test_all_policy_serves_local_hits(self):
        system = build_system(
            mcm_gpu_with_l15(16, remote_only=False, n_gpms=4, sms_per_gpm=2)
        )
        sm = system.gpms[0].sms[0]
        line = 0  # home partition 0 == local
        system.memsys.load(0.0, sm, line)
        # Second access from a different SM misses its L1 but hits the
        # shared L1.5 even though the line is local.
        other = system.gpms[0].sms[1]
        before = system.gpms[0].l2.stats.accesses
        done = system.memsys.load(0.0, other, line)
        assert system.gpms[0].l15.stats.hits == 1
        assert system.gpms[0].l2.stats.accesses == before

    def test_all_policy_store_updates_resident_line(self):
        system = build_system(
            mcm_gpu_with_l15(16, remote_only=False, n_gpms=4, sms_per_gpm=2)
        )
        sm = system.gpms[0].sms[0]
        system.memsys.load(0.0, sm, 0)
        assert system.gpms[0].l15.probe(0)
        system.memsys.store(1.0, sm, 0)
        # Write-through: still resident, never dirty.
        assert system.gpms[0].l15.probe(0)
        assert system.gpms[0].l15.flush() == []
