"""Integration tests for the simulation engine."""

import pytest

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, monolithic_gpu
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import Simulator, simulate
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import KernelLaunch, TraceRecord, Workload


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        category=Category.M_INTENSIVE,
        pattern="streaming",
        n_ctas=32,
        groups_per_cta=2,
        records_per_group=4,
        accesses_per_record=4,
        write_fraction=0.25,
        compute_per_record=4.0,
        kernel_iterations=2,
        footprint_bytes=512 * 1024,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def tiny_config(**overrides):
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, **overrides)


class ExplicitWorkload(Workload):
    """Hand-built workload for precise engine checks."""

    name = "explicit"

    def __init__(self, kernels):
        self._kernels = kernels

    def kernels(self):
        return iter(self._kernels)

    def digest(self):
        return "explicit"


class TestBasicExecution:
    def test_all_ctas_and_records_execute(self):
        workload = SyntheticWorkload(tiny_spec())
        engine = SimulationEngine(build_system(tiny_config()))
        result = engine.run(workload)
        assert result.ctas == 32 * 2  # per kernel x 2 kernels
        assert result.records == 32 * 2 * 4 * 2
        assert result.kernels == 2
        assert result.cycles > 0

    def test_access_counts_match_trace(self):
        workload = SyntheticWorkload(tiny_spec(write_fraction=0.0, kernel_iterations=1))
        result = SimulationEngine(build_system(tiny_config())).run(workload)
        assert result.loads == 32 * 2 * 4 * 4
        assert result.stores == 0

    def test_deterministic(self):
        workload = SyntheticWorkload(tiny_spec())
        a = SimulationEngine(build_system(tiny_config())).run(workload)
        b = SimulationEngine(build_system(tiny_config())).run(workload)
        assert a.cycles == b.cycles
        assert a.link_bytes == b.link_bytes

    def test_engine_reusable_across_runs(self):
        engine = SimulationEngine(build_system(tiny_config()))
        workload = SyntheticWorkload(tiny_spec())
        first = engine.run(workload)
        second = engine.run(workload)
        assert first.cycles == second.cycles


class TestSchedulingSemantics:
    def test_kernels_run_back_to_back(self):
        one = SyntheticWorkload(tiny_spec(kernel_iterations=1))
        two = SyntheticWorkload(tiny_spec(kernel_iterations=2))
        t_one = SimulationEngine(build_system(tiny_config())).run(one).cycles
        t_two = SimulationEngine(build_system(tiny_config())).run(two).cycles
        assert t_two > t_one * 1.5

    def test_kernel_boundary_flushes_l1(self):
        """Cross-kernel re-touch of identical lines must re-miss in L1."""
        from repro.memory.cache import CacheStats

        record = TraceRecord(1.0, (0, 4, 8), ())
        kernel = KernelLaunch(1, 1, lambda cta: [[record]], "k")
        workload = ExplicitWorkload([kernel, kernel])
        system = build_system(tiny_config())
        SimulationEngine(system).run(workload)
        stats = CacheStats()
        for gpm in system.gpms:
            stats = stats.merge(gpm.aggregate_l1_stats())
        assert stats.hits == 0
        assert stats.misses == 6  # all three lines miss again in kernel 2

    def test_more_ctas_than_slots_completes(self):
        # 4 GPMs x 2 SMs x 4 slots = 32 resident; 96 CTAs = 3 waves.
        workload = SyntheticWorkload(tiny_spec(n_ctas=96, kernel_iterations=1))
        result = SimulationEngine(build_system(tiny_config())).run(workload)
        assert result.ctas == 96

    def test_distributed_scheduler_runs_all_ctas(self):
        config = mcm_gpu_with_l15(
            16, scheduler="distributed", placement="first_touch",
            n_gpms=4, sms_per_gpm=2,
        )
        workload = SyntheticWorkload(tiny_spec(n_ctas=37, kernel_iterations=1))
        result = SimulationEngine(build_system(config)).run(workload)
        assert result.ctas == 37

    def test_single_cta_kernel(self):
        record = TraceRecord(5.0, (1,), ())
        kernel = KernelLaunch(1, 1, lambda cta: [[record]], "solo")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.ctas == 1
        assert result.records == 1

    def test_trace_group_mismatch_rejected(self):
        kernel = KernelLaunch(1, 2, lambda cta: [[TraceRecord(1.0, (1,), ())]], "bad")
        engine = SimulationEngine(build_system(tiny_config()))
        with pytest.raises(ValueError, match="groups"):
            engine.run(ExplicitWorkload([kernel]))


class TestTimingSanity:
    def test_compute_bound_kernel_duration(self):
        """A single compute-only warp group runs for ~its compute cycles."""
        records = [[TraceRecord(1000.0, (), ()) for _ in range(3)]]
        kernel = KernelLaunch(1, 1, lambda cta: records, "compute")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.cycles == pytest.approx(3000.0, rel=0.01)

    def test_memory_latency_visible_for_single_group(self):
        records = [[TraceRecord(0.0, (0,), ())]]
        kernel = KernelLaunch(1, 1, lambda cta: records, "mem")
        result = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([kernel]))
        assert result.cycles > 100.0  # at least DRAM latency

    def test_parallel_groups_overlap(self):
        """Two independent CTAs should not serialize on a big machine."""
        records = [[TraceRecord(1000.0, (), ())]]
        one = KernelLaunch(1, 1, lambda cta: records, "k1")
        many = KernelLaunch(16, 1, lambda cta: records, "k16")
        t1 = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([one])).cycles
        t16 = SimulationEngine(build_system(tiny_config())).run(ExplicitWorkload([many])).cycles
        assert t16 < t1 * 3


class TestSimulatorFacade:
    def test_simulate_by_workload(self):
        result = simulate(SyntheticWorkload(tiny_spec()), tiny_config())
        assert result.workload_name == "tiny"
        assert result.system_name.startswith("mcm-baseline")

    def test_simulate_by_suite_name(self):
        from repro.workloads.suite import spec_by_name

        small = spec_by_name("CFD").scaled_down(0.02)
        result = simulate(SyntheticWorkload(small), tiny_config())
        assert result.workload_name == "CFD"

    def test_simulator_runs_are_independent(self):
        simulator = Simulator(tiny_config())
        workload = SyntheticWorkload(tiny_spec())
        first = simulator.run(workload)
        second = simulator.run(workload)
        assert first.cycles == second.cycles
        assert first.dram_bytes_read == second.dram_bytes_read
