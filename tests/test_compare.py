"""Unit tests for comparison matrices."""

import pytest

from repro.analysis.compare import build_matrix, render_matrix
from repro.memory.cache import CacheStats
from repro.sim.result import SimResult
from repro.workloads.suite import all_specs


def result(name, cycles):
    return SimResult(
        workload_name=name,
        system_name="sys",
        cycles=cycles,
        kernels=1,
        ctas=1,
        records=1,
        loads=1,
        stores=0,
        remote_loads=0,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=0,
        page_local=0,
        page_remote=0,
    )


def full_suite_results(factor):
    return {spec.name: result(spec.name, 100.0 * factor) for spec in all_specs()}


class TestBuildMatrix:
    def test_speedups_relative_to_baseline(self):
        baseline = full_suite_results(1.0)
        configs = {"fast": full_suite_results(0.5), "slow": full_suite_results(2.0)}
        matrix = build_matrix(baseline, configs)
        assert matrix.column_labels == ["fast", "slow"]
        first_row = next(iter(matrix.rows.values()))
        assert first_row == [pytest.approx(2.0), pytest.approx(0.5)]

    def test_category_geomeans_present(self):
        matrix = build_matrix(full_suite_results(1.0), {"x": full_suite_results(0.8)})
        assert set(matrix.category_geomeans) == {
            "M-Intensive", "C-Intensive", "Limited Parallelism",
        }
        for values in matrix.category_geomeans.values():
            assert values[0] == pytest.approx(1.25)

    def test_incomplete_rows_dropped(self):
        baseline = full_suite_results(1.0)
        partial = full_suite_results(0.5)
        del partial["Stream"]
        matrix = build_matrix(baseline, {"partial": partial})
        assert "Stream" not in matrix.rows
        assert len(matrix.rows) == 47

    def test_best_configuration(self):
        matrix = build_matrix(
            full_suite_results(1.0),
            {"meh": full_suite_results(0.9), "best": full_suite_results(0.4)},
        )
        assert matrix.best_configuration() == "best"

    def test_column_accessor(self):
        matrix = build_matrix(full_suite_results(1.0), {"x": full_suite_results(0.5)})
        column = matrix.column("x")
        assert column["Stream"] == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            build_matrix(full_suite_results(1.0), {})

    def test_strict_raises_on_dropped_workloads(self):
        partial = full_suite_results(0.5)
        del partial["Stream"]
        with pytest.raises(ValueError, match="Stream"):
            build_matrix(full_suite_results(1.0), {"partial": partial}, strict=True)

    def test_strict_passes_on_complete_rows(self):
        matrix = build_matrix(
            full_suite_results(1.0), {"x": full_suite_results(0.5)}, strict=True
        )
        assert len(matrix.rows) == 48

    def test_dropped_workloads_logged(self, caplog):
        partial = full_suite_results(0.5)
        del partial["Stream"]
        with caplog.at_level("WARNING", logger="repro.analysis.compare"):
            build_matrix(full_suite_results(1.0), {"partial": partial})
        assert any("Stream" in record.message for record in caplog.records)

    def test_best_configuration_tie_breaks_to_first_label(self):
        matrix = build_matrix(
            full_suite_results(1.0),
            {"first": full_suite_results(0.5), "twin": full_suite_results(0.5)},
        )
        assert matrix.best_configuration() == "first"

    def test_column_missing_label_raises_keyerror(self):
        matrix = build_matrix(full_suite_results(1.0), {"x": full_suite_results(0.5)})
        with pytest.raises(KeyError, match="'x'"):
            matrix.column("nope")


class TestRenderMatrix:
    def test_render_contains_rows_and_footers(self):
        matrix = build_matrix(full_suite_results(1.0), {"x": full_suite_results(0.5)})
        text = render_matrix(matrix, title="T")
        assert "Stream" in text
        assert "[M-Intensive geomean]" in text
        assert "speedup over baseline" in text
