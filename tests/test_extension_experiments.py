"""Unit tests for the extension-study experiment modules (stubbed runs)."""

import pytest

from repro.experiments import (
    ablation_page_size,
    ablation_scheduler,
    gpm_scaling,
    topology_study,
)
from repro.memory.cache import CacheStats
from repro.sim.result import SimResult
from repro.workloads.suite import all_specs


def stub_result(name, cycles, remote=0.2):
    total = 1000
    remote_count = int(total * remote)
    return SimResult(
        workload_name=name,
        system_name="stub",
        cycles=cycles,
        kernels=1,
        ctas=1,
        records=1,
        loads=total,
        stores=0,
        remote_loads=remote_count,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=100,
        page_local=total - remote_count,
        page_remote=remote_count,
    )


def stub_run_suite(cycle_fn):
    def fake(configs, workloads=None, cache=None, max_workers=None, progress=None):
        return [
            {spec.name: stub_result(spec.name, cycle_fn(config)) for spec in all_specs()}
            for config in configs
        ]

    return fake


class TestTopologyStudy:
    def test_speedup_direction(self, monkeypatch):
        def cycles(config):
            return 800.0 if config.topology == "fully_connected" else 1000.0

        monkeypatch.setattr(topology_study, "run_suites", stub_run_suite(cycles))
        points = topology_study.run_topology_study()
        assert points["baseline"].overall == pytest.approx(1.25)
        assert points["optimized"].overall == pytest.approx(1.25)
        assert "Topology" in topology_study.report(points)

    def test_iso_budget_bandwidth_used(self, monkeypatch):
        seen = []

        def cycles(config):
            seen.append((config.topology, config.link_bandwidth))
            return 1000.0

        monkeypatch.setattr(topology_study, "run_suites", stub_run_suite(cycles))
        topology_study.run_topology_study(link_setting=768.0)
        fc_settings = {bw for topo, bw in seen if topo == "fully_connected"}
        assert len(fc_settings) == 1
        assert fc_settings.pop() == pytest.approx(512.0)


class TestGPMScaling:
    def test_reference_point_is_unity(self, monkeypatch):
        monkeypatch.setattr(gpm_scaling, "run_suites", stub_run_suite(lambda config: 100.0))
        points = gpm_scaling.run_gpm_scaling((2, 4, 8))
        by_count = {p.n_gpms: p for p in points}
        assert by_count[4].baseline_speedup == pytest.approx(1.0)
        assert by_count[4].sms_per_gpm == 64
        assert by_count[8].sms_per_gpm == 32

    def test_resources_held_constant(self):
        config = gpm_scaling._scaled_config(
            __import__("repro.core.presets", fromlist=["baseline_mcm_gpu"]).baseline_mcm_gpu(),
            8,
            "test-8gpm",
        )
        assert config.total_sms == 256
        assert config.total_dram_bandwidth == pytest.approx(3072.0)

    def test_rejects_non_divisor(self, monkeypatch):
        monkeypatch.setattr(gpm_scaling, "run_suites", stub_run_suite(lambda config: 1.0))
        with pytest.raises(ValueError, match="divide"):
            gpm_scaling.run_gpm_scaling((3,))


class TestSchedulerAblation:
    def test_imbalanced_set_nonempty(self):
        assert len(ablation_scheduler.IMBALANCED) >= 3
        names = {spec.name for spec in all_specs()}
        assert set(ablation_scheduler.IMBALANCED) <= names

    def test_speedups_computed(self, monkeypatch):
        def cycles(config):
            return {"centralized": 1000.0, "distributed": 800.0, "dynamic": 750.0}[
                config.scheduler
            ]

        monkeypatch.setattr(ablation_scheduler, "run_suites", stub_run_suite(cycles))
        ablation = ablation_scheduler.run_scheduler_ablation()
        assert ablation.overall["distributed"] == pytest.approx(1.25)
        assert ablation.overall["dynamic"] == pytest.approx(1000 / 750)
        assert "Scheduler" in ablation_scheduler.report(ablation)


class TestPageSizeAblation:
    def test_reference_and_locality(self, monkeypatch):
        def cycles(config):
            return 1000.0 if config.page_bytes == 2048 else 1100.0

        monkeypatch.setattr(ablation_page_size, "run_suites", stub_run_suite(cycles))
        points = ablation_page_size.run_page_size_ablation((1024, 2048))
        by_size = {p.page_bytes: p for p in points}
        assert by_size[2048].speedup == pytest.approx(1.0)
        assert by_size[1024].speedup == pytest.approx(1000 / 1100)
        assert by_size[2048].mean_locality == pytest.approx(0.8)
        assert "Page-size" in ablation_page_size.report(points)
