"""Tests for the package area/power budget model (``repro.core.budget``)."""

from dataclasses import replace

import pytest

from repro.core.budget import (
    AREA_PER_SM_MM2,
    DEFAULT_BUDGET,
    WATTS_PER_SM,
    BudgetSpec,
    bandwidth_feasible,
    evaluate_budget,
    full_scale_sram_mb,
    package_cost,
)
from repro.core.energy import TIER_BANDWIDTH_GBPS, IntegrationTier
from repro.core.presets import baseline_mcm_gpu, monolithic_gpu, multi_gpu


class TestPackageCost:
    def test_components_sum_to_totals(self):
        cost = package_cost(baseline_mcm_gpu())
        assert cost.area_mm2 == pytest.approx(
            cost.sm_area_mm2
            + cost.sram_area_mm2
            + cost.dram_phy_area_mm2
            + cost.link_phy_area_mm2
        )
        assert cost.power_w == pytest.approx(
            cost.sm_watts + cost.sram_watts + cost.dram_watts + cost.link_watts
        )

    def test_sm_costs_scale_with_sm_count(self):
        cost = package_cost(baseline_mcm_gpu())
        assert cost.sm_area_mm2 == pytest.approx(256 * AREA_PER_SM_MM2)
        assert cost.sm_watts == pytest.approx(256 * WATTS_PER_SM)

    def test_sram_area_uses_full_scale_capacity(self):
        # The simulator stores 1/32-scale capacities; the cost model must
        # price the full-scale silicon, so 16 MB of L2 shows up as 16 MB.
        config = baseline_mcm_gpu()
        assert full_scale_sram_mb(config) >= 16.0

    def test_cost_is_monotone_in_module_count(self):
        costs = [
            package_cost(
                replace(
                    baseline_mcm_gpu(n_gpms=n, name=f"cost-{n}"), topology="mesh"
                )
            )
            for n in (8, 16, 64)
        ]
        assert costs[0].area_mm2 < costs[1].area_mm2 < costs[2].area_mm2
        assert costs[0].power_w < costs[1].power_w < costs[2].power_w

    def test_fully_connected_pays_more_link_phy_than_ring(self):
        ring = package_cost(baseline_mcm_gpu(n_gpms=8, name="phy-ring"))
        fc = package_cost(
            replace(
                baseline_mcm_gpu(n_gpms=8, name="phy-fc"),
                topology="fully_connected",
            )
        )
        # 28 edges vs 8: the all-to-all fabric's PHY bill is the budget
        # mechanism that prices port count, not just per-link speed.
        assert fc.link_phy_area_mm2 > 3.0 * ring.link_phy_area_mm2

    def test_as_dict_round_trips_totals(self):
        data = package_cost(baseline_mcm_gpu()).as_dict()
        assert data["area_mm2"] == pytest.approx(
            data["sm_area_mm2"]
            + data["sram_area_mm2"]
            + data["dram_phy_area_mm2"]
            + data["link_phy_area_mm2"]
        )


class TestBandwidthFeasibility:
    """Satellite fix: Table 2's ``TIER_BANDWIDTH_GBPS`` was dead data —
    these tests pin that the constants are actually consumed."""

    def test_package_tier_ceiling_is_enforced(self):
        ceiling = TIER_BANDWIDTH_GBPS[IntegrationTier.PACKAGE]
        assert ceiling == 1500.0  # Table 2's on-package figure
        at_cap = replace(baseline_mcm_gpu(), link_bandwidth=ceiling)
        over_cap = replace(baseline_mcm_gpu(), link_bandwidth=ceiling + 1.0)
        assert bandwidth_feasible(at_cap)
        assert not bandwidth_feasible(over_cap)

    def test_monolithic_reference_is_unbuildable(self):
        # The paper's monolithic reference runs a 32 TB/s on-die fabric —
        # deliberately beyond Table 2's 20 TB/s chip-tier practical cap.
        assert not bandwidth_feasible(monolithic_gpu(256))
        verdict = evaluate_budget(monolithic_gpu(256))
        assert not verdict.bandwidth_ok
        assert not verdict.feasible

    def test_board_tier_multi_gpu_is_at_cap(self):
        config = multi_gpu(optimized=False)
        assert config.link_bandwidth == TIER_BANDWIDTH_GBPS[IntegrationTier.BOARD]
        assert bandwidth_feasible(config)

    def test_single_module_is_trivially_feasible(self):
        config = baseline_mcm_gpu(n_gpms=1, name="single")
        assert bandwidth_feasible(config)


class TestBudgetVerdicts:
    def test_paper_baseline_fits_the_default_budget(self):
        verdict = evaluate_budget(baseline_mcm_gpu())
        assert verdict.feasible
        assert verdict.cost.area_mm2 < DEFAULT_BUDGET.area_mm2

    def test_the_budget_cliff(self):
        # The scale-out study's designed story: 8 GPMs fit, 64 do not.
        mesh8 = replace(baseline_mcm_gpu(n_gpms=8, name="cliff-8"), topology="mesh")
        mesh64 = replace(baseline_mcm_gpu(n_gpms=64, name="cliff-64"), topology="mesh")
        assert evaluate_budget(mesh8).feasible
        verdict64 = evaluate_budget(mesh64)
        assert not verdict64.area_ok
        assert not verdict64.power_ok

    def test_custom_budget_changes_the_verdict(self):
        config = baseline_mcm_gpu()
        tight = BudgetSpec(area_mm2=100.0, power_w=100.0, name="tight")
        verdict = evaluate_budget(config, tight)
        assert not verdict.area_ok
        assert not verdict.power_ok
        assert not verdict.feasible

    def test_verdict_as_dict_is_flat_and_complete(self):
        data = evaluate_budget(baseline_mcm_gpu()).as_dict()
        for key in (
            "system",
            "budget",
            "area_mm2",
            "power_w",
            "area_ok",
            "power_ok",
            "bandwidth_ok",
            "feasible",
        ):
            assert key in data
        assert data["feasible"] is True
