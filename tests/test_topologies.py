"""Cross-topology tests: registry dispatch, conservation, and the 2-node fix."""

from dataclasses import replace

import pytest

from repro.core.presets import baseline_mcm_gpu
from repro.interconnect.grid import GraphNetwork
from repro.interconnect.hierarchical import PACKAGE_SIZE, make_hierarchical
from repro.interconnect.link import REQUEST, RESPONSE
from repro.interconnect.mesh import grid_dims
from repro.interconnect.ring import RingNetwork
from repro.interconnect.topology import (
    average_hops,
    bisection_bandwidth,
    build_network,
    diameter,
    get_topology,
    link_count,
    mean_ports,
    topology_names,
)

ALL_TOPOLOGIES = topology_names()


class TestRegistry:
    def test_all_fabrics_registered(self):
        assert set(ALL_TOPOLOGIES) == {
            "fully_connected",
            "hierarchical",
            "mesh",
            "ring",
            "torus",
        }

    def test_unknown_name_fails_loudly_with_known_names(self):
        with pytest.raises(ValueError, match="hypercube.*ring"):
            get_topology("hypercube")

    def test_config_validates_topology_against_registry(self):
        with pytest.raises(ValueError, match="unknown topology"):
            replace(baseline_mcm_gpu(), topology="hypercube")

    def test_factories_build_the_dedicated_classes(self):
        assert isinstance(build_network("ring", 4, 768.0, 32.0), RingNetwork)
        assert isinstance(build_network("mesh", 8, 768.0, 32.0), GraphNetwork)

    def test_analytical_queries_reject_unknown_topology(self):
        for query in (average_hops, link_count, mean_ports, diameter):
            with pytest.raises(ValueError, match="unknown topology"):
                query("hypercube", 8)


class TestTwoNodeRingRegression:
    """The headline bug: a 2-node ring built two parallel link pairs and
    the parity tie-break made one pair permanently idle, stranding half
    the modeled link bandwidth.  The degenerate ring now collapses to a
    single physical pair, consistent with its 2-port analytical claim."""

    def test_two_node_ring_has_exactly_one_link_pair(self):
        ring = RingNetwork(2, 768.0)
        assert len(ring.links) == 2  # one directional link each way

    def test_no_link_is_stranded_under_symmetric_load(self):
        # Pre-fix this failed: 4 directional links existed and the
        # route tables only ever used one per direction.
        ring = RingNetwork(2, 768.0)
        ring.transfer(0.0, 0, 1, 128, REQUEST)
        ring.transfer(0.0, 1, 0, 128, REQUEST)
        ring.transfer(0.0, 0, 1, 64, RESPONSE)
        ring.transfer(0.0, 1, 0, 64, RESPONSE)
        assert all(link.bytes_transferred > 0 for link in ring.links)
        assert ring.total_link_bytes == 2 * (128 + 64)

    def test_directions_do_not_share_a_pipe(self):
        # Each direction still gets its own physical link at half the
        # setting — the collapse removes idle hardware, not capacity.
        ring = RingNetwork(2, 768.0)
        assert ring.links[0].request_pipe.bytes_per_cycle == pytest.approx(384.0)
        ring.transfer(0.0, 0, 1, 1 << 20, REQUEST)
        prompt = ring.transfer(0.0, 1, 0, 128, REQUEST)
        assert prompt < 100.0  # reverse direction unaffected by the backlog

    def test_two_node_routes_are_single_hop(self):
        ring = RingNetwork(2, 768.0)
        assert ring.hops_between(0, 1) == 1
        assert ring.hops_between(1, 0) == 1
        assert ring.route(0, 1) != ring.route(1, 0)


@pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
@pytest.mark.parametrize("n_nodes", [4, 8])
class TestConservationAcrossRegistry:
    def test_link_bytes_equal_hop_weighted_traffic(self, topology, n_nodes):
        network = build_network(topology, n_nodes, 768.0, 32.0)
        n_bytes = 96
        expected = 0
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if src != dst:
                    network.transfer(0.0, src, dst, n_bytes)
                    expected += network.hops_between(src, dst) * n_bytes
        assert network.total_link_bytes == expected

    def test_route_lengths_are_symmetric_and_match_hops(self, topology, n_nodes):
        network = build_network(topology, n_nodes, 768.0, 32.0)
        for src in range(n_nodes):
            for dst in range(n_nodes):
                route = network.route(src, dst)
                assert len(route) == network.hops_between(src, dst)
                assert len(route) == len(network.route(dst, src))

    def test_analytical_hops_match_network(self, topology, n_nodes):
        network = build_network(topology, n_nodes, 768.0, 32.0)
        assert network.average_hops_uniform() == pytest.approx(
            average_hops(topology, n_nodes)
        )

    def test_reset_clears_traffic(self, topology, n_nodes):
        network = build_network(topology, n_nodes, 768.0, 32.0)
        network.transfer(0.0, 0, n_nodes - 1, 128)
        network.reset()
        assert network.total_link_bytes == 0


@pytest.mark.parametrize("topology", ALL_TOPOLOGIES)
class TestSingleGpmNeverRemote:
    def test_single_node_network_is_link_free(self, topology):
        network = build_network(topology, 1, 768.0, 32.0)
        assert network.transfer(3.0, 0, 0, 4096) == 3.0
        assert network.total_link_bytes == 0
        assert average_hops(topology, 1) == 0.0


class TestGridShapes:
    def test_grid_dims_most_square(self):
        assert grid_dims(4) == (2, 2)
        assert grid_dims(8) == (2, 4)
        assert grid_dims(16) == (4, 4)
        assert grid_dims(64) == (8, 8)

    def test_mesh_and_torus_diameters(self):
        assert diameter("mesh", 8) == 4  # 2x4 grid: (2-1) + (4-1)
        assert diameter("torus", 8) == 3
        assert diameter("mesh", 64) == 14
        assert diameter("torus", 64) == 8

    def test_wraparound_shortens_paths(self):
        for n_nodes in (8, 16, 64):
            assert average_hops("torus", n_nodes) < average_hops("mesh", n_nodes)
            assert average_hops("mesh", n_nodes) < average_hops("ring", n_nodes)

    def test_bisection_orders_as_expected(self):
        # 2x4 mesh cuts 2 column links; the torus doubles them with
        # wraparound; the ring always cuts exactly two edges.
        assert bisection_bandwidth("ring", 8, 768.0) == pytest.approx(1536.0)
        assert bisection_bandwidth("mesh", 8, 768.0) == pytest.approx(1536.0)
        assert bisection_bandwidth("torus", 8, 768.0) == pytest.approx(3072.0)
        assert bisection_bandwidth("fully_connected", 8, 768.0) == pytest.approx(
            4 * 4 * 768.0
        )


class TestHierarchical:
    def test_package_size_is_four(self):
        assert PACKAGE_SIZE == 4

    def test_cross_package_routes_go_through_gateways(self):
        network = make_hierarchical(8, 768.0, 32.0)
        # Gateways are nodes 0 and 4; 1 -> 5 must hop 1->0, board, 4->5.
        assert network.hops_between(0, 4) == 1
        assert network.hops_between(1, 5) == 3
        assert network.hops_between(1, 2) == 1

    def test_board_links_carry_board_latency(self):
        from repro.interconnect.board import (
            BOARD_AGGREGATE_GBPS,
            BOARD_HOP_LATENCY_CYCLES,
        )

        network = make_hierarchical(8, 768.0, 32.0)
        (board_link,) = network.route(0, 4)
        assert board_link.latency_cycles == BOARD_HOP_LATENCY_CYCLES
        assert board_link.request_pipe.bytes_per_cycle == pytest.approx(
            BOARD_AGGREGATE_GBPS / 2.0
        )

    def test_bisection_is_the_board_ring(self):
        # The half-split severs only board links: the fixed 256 GB/s is
        # the whole cross-package capacity regardless of the link setting.
        assert bisection_bandwidth("hierarchical", 8, 768.0) == pytest.approx(256.0)
        assert bisection_bandwidth("hierarchical", 8, 1536.0) == pytest.approx(256.0)

    def test_small_counts_degenerate_to_one_package(self):
        network = make_hierarchical(4, 768.0, 32.0)
        assert network.diameter() == 2  # plain 4-ring, no board links
        assert bisection_bandwidth("hierarchical", 4, 768.0) == pytest.approx(1536.0)


class TestSimulatedTopologyConservation:
    @pytest.mark.parametrize("topology", ["mesh", "torus", "hierarchical"])
    def test_micro_simulation_passes_invariants(self, topology):
        from repro.validate import check_result, validated_run
        from repro.validate.properties import micro_suite

        config = replace(
            baseline_mcm_gpu(n_gpms=8, name=f"micro-{topology}-8"),
            topology=topology,
        )
        workload = micro_suite(1)[0]
        result, validator = validated_run(workload, config, strict=False)
        violations = validator.violations + check_result(result, config=config)
        assert violations == []
        assert result.link_bytes > 0
