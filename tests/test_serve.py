"""End-to-end and unit tests for the ``repro.serve`` job server."""

import asyncio
import json
import os
import queue
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.presets import baseline_mcm_gpu
from repro.experiments.common import ResultCache, run_suites
from repro.serve import (
    JobStore,
    PairCrash,
    PairError,
    PairExecutor,
    PairTimeout,
    RemoteError,
    Scheduler,
    ServeApp,
    ServeClient,
    WireError,
    config_from_wire,
    pair_to_wire,
    start_server,
    workload_from_wire,
    workload_to_wire,
)
from repro.sim.simulator import Simulator
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import Workload


def tiny_workload(name, pattern="streaming", n_ctas=16):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=n_ctas,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_config(**overrides):
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, **overrides)


class CrashingWorkload(Workload):
    """Kills its worker process mid-simulation (picklable, top-level)."""

    name = "crasher"

    def kernels(self):
        os._exit(13)

    def digest(self):
        return "crasher-v1"


class HangingWorkload(Workload):
    """Sleeps far past any test timeout (picklable, top-level)."""

    name = "hanger"

    def kernels(self):
        time.sleep(60)
        return iter(())

    def digest(self):
        return "hanger-v1"


class RaisingWorkload(Workload):
    """Raises a deterministic in-simulation exception."""

    name = "raiser"

    def kernels(self):
        raise ValueError("intentional test failure")

    def digest(self):
        return "raiser-v1"


# ----------------------------------------------------------------------
# wire formats
# ----------------------------------------------------------------------


class TestWire:
    def test_workload_round_trip_preserves_digest(self):
        workload = tiny_workload("wire-w1", pattern="hotset")
        revived = workload_from_wire(json.loads(json.dumps(workload_to_wire(workload))))
        assert revived.digest() == workload.digest()
        assert revived.name == workload.name

    def test_suite_reference_form(self):
        revived = workload_from_wire({"name": "Stream", "scale": 0.25})
        assert revived.name == "Stream"

    def test_config_round_trip_preserves_digest(self):
        config = tiny_config(link_bandwidth=384.0)
        revived = config_from_wire(json.loads(json.dumps(config.to_dict())))
        assert revived.digest() == config.digest()

    def test_non_synthetic_workload_rejected(self):
        with pytest.raises(WireError):
            workload_to_wire(CrashingWorkload())

    def test_malformed_payloads_rejected(self):
        with pytest.raises(WireError):
            workload_from_wire({"nonsense": 1})
        with pytest.raises(WireError):
            workload_from_wire({"name": "no-such-workload"})
        with pytest.raises(WireError):
            config_from_wire({"not": "a config"})


# ----------------------------------------------------------------------
# job store
# ----------------------------------------------------------------------


class TestJobStore:
    def test_lifecycle_and_events(self):
        store = JobStore()
        job = store.create("k1", "w", "c")
        assert job.state == "queued"
        assert store.active_for_key("k1") is job
        store.transition(job, "running")
        store.transition(job, "done")
        assert job.terminal
        assert store.active_for_key("k1") is None
        states = [event["state"] for event in store.events_since(0)]
        assert states == ["queued", "running", "done"]
        assert store.counts()["done"] == 1

    def test_cached_jobs_are_born_terminal(self):
        store = JobStore()
        job = store.create("k2", "w", "c", state="cached")
        assert job.terminal
        assert store.active_for_key("k2") is None
        assert job.finished_at is not None

    def test_event_replay_is_incremental(self):
        store = JobStore()
        job = store.create("k3", "w", "c")
        seq = store.last_seq
        store.transition(job, "failed", error={"kind": "exception", "error": "x"})
        fresh = store.events_since(seq)
        assert len(fresh) == 1
        assert fresh[0]["state"] == "failed"
        assert fresh[0]["error"]["kind"] == "exception"


# ----------------------------------------------------------------------
# pair executor (real subprocesses)
# ----------------------------------------------------------------------


class TestPairExecutor:
    def test_runs_a_pair(self):
        workload = tiny_workload("exec-w1")
        config = tiny_config()

        async def go():
            executor = PairExecutor(max_workers=1)
            try:
                return await executor.run(workload.spec, config)
            finally:
                await executor.close()

        result, sim_seconds, _ = asyncio.run(go())
        expected = Simulator(config).run(workload)
        assert result.to_dict() == expected.to_dict()
        assert sim_seconds >= 0.0

    def test_worker_crash_is_bounded(self):
        config = tiny_config()

        async def go():
            executor = PairExecutor(max_workers=1, crash_retries=1)
            try:
                with pytest.raises(PairCrash):
                    await executor.run(CrashingWorkload(), config)
            finally:
                await executor.close(wait=False)

        asyncio.run(go())

    def test_timeout_kills_the_worker(self):
        config = tiny_config()

        async def go():
            executor = PairExecutor(max_workers=1)
            try:
                start = time.monotonic()
                with pytest.raises(PairTimeout):
                    await executor.run(HangingWorkload(), config, timeout=1.0)
                assert time.monotonic() - start < 30.0
            finally:
                await executor.close(wait=False)

        asyncio.run(go())

    def test_simulation_exception_is_not_retried(self):
        config = tiny_config()

        async def go():
            executor = PairExecutor(max_workers=1)
            try:
                with pytest.raises(PairError) as info:
                    await executor.run(RaisingWorkload(), config)
                assert info.value.kind == "exception"
                assert "intentional test failure" in str(info.value)
            finally:
                await executor.close()

        asyncio.run(go())


# ----------------------------------------------------------------------
# scheduler (fake executor: deterministic coalescing)
# ----------------------------------------------------------------------


class GateExecutor:
    """In-loop fake executor that blocks until released."""

    max_workers = 2

    def __init__(self):
        self.calls = 0
        self.gate = asyncio.Event()

    async def run(self, payload, config, timeout=None):
        self.calls += 1
        await self.gate.wait()
        workload = SyntheticWorkload(payload) if isinstance(payload, WorkloadSpec) else payload
        start = time.time()
        result = Simulator(config).run(workload)
        return result, time.time() - start, None

    async def close(self, wait=True):
        pass


class ExplodingExecutor:
    """In-loop fake executor that always fails with a given kind."""

    max_workers = 1

    def __init__(self, exc_type=PairError, message="boom"):
        self.exc_type = exc_type
        self.message = message

    async def run(self, payload, config, timeout=None):
        raise self.exc_type(self.message)

    async def close(self, wait=True):
        pass


class TestScheduler:
    def test_identical_submissions_coalesce_to_one_run(self):
        workload = tiny_workload("sched-w1")
        config = tiny_config()

        async def go():
            executor = GateExecutor()
            scheduler = Scheduler(cache=None, executor=executor)
            first, how_first = scheduler.submit_classified(workload, config)
            second, how_second = scheduler.submit_classified(workload, config)
            assert how_first == "queued"
            assert how_second == "coalesced"
            assert second is first
            assert first.clients == 2
            executor.gate.set()
            await scheduler.drain()
            assert first.state == "done"
            assert executor.calls == 1

        asyncio.run(go())

    def test_batch_duplicates_share_one_job(self):
        workload = tiny_workload("sched-w2")
        config = tiny_config()

        async def go():
            executor = GateExecutor()
            executor.gate.set()
            scheduler = Scheduler(cache=None, executor=executor)
            batch = scheduler.submit_batch([(workload, config)] * 3)
            wire = batch.to_wire()
            assert wire["queued"] == 1
            assert wire["coalesced"] == 2
            await scheduler.drain()
            assert executor.calls == 1
            status = scheduler.batch_status(batch)
            assert status["done"] is True
            assert status["states"] == {"done": 3}

        asyncio.run(go())

    def test_cache_hits_become_cached_jobs(self, tmp_path):
        workload = tiny_workload("sched-w3")
        config = tiny_config()
        cache = ResultCache(tmp_path / "cache")
        cache.put(Simulator(config).run(workload))

        async def go():
            scheduler = Scheduler(cache=cache, executor=ExplodingExecutor())
            job, how = scheduler.submit_classified(workload, config)
            assert how == "cached"
            assert job.state == "cached"
            assert job.result is not None
            assert scheduler.cache_served == 1
            await scheduler.drain()

        asyncio.run(go())

    def test_failure_kind_lands_in_error_payload(self):
        workload = tiny_workload("sched-w4")
        config = tiny_config()

        async def go():
            scheduler = Scheduler(
                cache=None, executor=ExplodingExecutor(PairTimeout, "too slow")
            )
            job = scheduler.submit(workload, config)
            await scheduler.drain()
            assert job.state == "failed"
            assert job.error == {"kind": "timeout", "error": "too slow"}

        asyncio.run(go())

    def test_draining_rejects_submissions(self):
        workload = tiny_workload("sched-w5")
        config = tiny_config()

        async def go():
            from repro.serve import DrainingError

            scheduler = Scheduler(cache=None, executor=GateExecutor())
            await scheduler.drain()
            with pytest.raises(DrainingError):
                scheduler.submit(workload, config)

        asyncio.run(go())


# ----------------------------------------------------------------------
# HTTP server end-to-end
# ----------------------------------------------------------------------


def _start_server_thread(tmp_path, executor=None, max_workers=2):
    """Run a ServeApp in a daemon thread; returns a handle namespace."""
    handoff = queue.Queue()

    def run():
        async def main():
            cache = ResultCache(tmp_path / "cache")
            scheduler = Scheduler(
                cache=cache, max_workers=max_workers, executor=executor
            )
            app = ServeApp(scheduler, store_path=tmp_path / "store.json")
            server = await start_server(app, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            handoff.put((port, scheduler, app))
            await app.done.wait()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    port, scheduler, app = handoff.get(timeout=30)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=120.0)
    return SimpleNamespace(
        client=client, scheduler=scheduler, app=app, thread=thread, tmp=tmp_path
    )


@pytest.fixture()
def server(tmp_path):
    handle = _start_server_thread(tmp_path)
    yield handle
    try:
        handle.client.drain(grace=10.0)
    except RemoteError:
        pass
    handle.thread.join(timeout=30)


class TestServerEndToEnd:
    def test_submit_matches_local_simulation(self, server):
        workload = tiny_workload("e2e-w1")
        config = tiny_config()
        view = server.client.submit(workload, config)
        assert view["how"] == "queued"
        view = server.client.wait_job(view["id"], timeout=120)
        assert view["state"] == "done"
        expected = Simulator(config).run(workload)
        assert view["result"] == expected.to_dict()

    def test_resubmission_is_fully_cache_served(self, server):
        pairs = [
            (tiny_workload("e2e-w2"), tiny_config()),
            (tiny_workload("e2e-w3", pattern="hotset"), tiny_config()),
        ]
        first = server.client.run_pairs(pairs, timeout=120)
        assert all(row["how"] == "queued" for row in first)
        executed = server.scheduler.sims_executed
        second = server.client.run_pairs(pairs, timeout=120)
        assert all(row["how"] == "cached" for row in second)
        assert server.scheduler.sims_executed == executed
        for cold, warm in zip(first, second):
            assert cold["result"].to_dict() == warm["result"].to_dict()

    def test_concurrent_identical_submissions_run_once(self, server):
        workload = tiny_workload("e2e-w4", n_ctas=24)
        config = tiny_config()
        outcomes = []

        def submit_and_wait():
            view = server.client.submit(workload, config)
            outcomes.append(server.client.wait_job(view["id"], timeout=120))

        threads = [threading.Thread(target=submit_and_wait) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outcomes) == 2
        assert {view["state"] for view in outcomes} <= {"done", "cached"}
        assert outcomes[0]["result"] == outcomes[1]["result"]
        assert server.scheduler.metrics.sims_by_config.get(config.name, 0) == 1

    def test_batch_duplicate_pairs_coalesce_over_http(self, server):
        workload = tiny_workload("e2e-w5")
        config = tiny_config()
        batch = server.client.submit_pairs([(workload, config)] * 2)
        assert batch["queued"] == 1
        assert batch["coalesced"] == 1
        outcome = server.client.wait_batch(batch["id"], timeout=120)
        assert [row["state"] for row in outcome["jobs"]] == ["done", "done"]
        assert outcome["jobs"][0]["id"] == outcome["jobs"][1]["id"]

    def test_cache_refresh_endpoint_sees_external_writes(self, server):
        workload = tiny_workload("e2e-w6")
        config = tiny_config()
        # Another process (here: another ResultCache instance with its own
        # shard) writes a result into the server's cache directory.
        foreign = ResultCache(server.tmp / "cache", shard="foreign")
        foreign.put(Simulator(config).run(workload))
        refreshed = server.client.refresh()
        assert refreshed["new_entries"] >= 1
        view = server.client.submit(workload, config)
        assert view["how"] == "cached"
        stats = server.client.cache_stats()
        assert stats["entries"] >= 1

    def test_events_stream_replays_transitions(self, server):
        workload = tiny_workload("e2e-w7")
        config = tiny_config()
        view = server.client.submit(workload, config)
        server.client.wait_job(view["id"], timeout=120)
        seen = []
        for event in server.client.events(since=0):
            seen.append(event)
            if event["job"] == view["id"] and event["state"] == "done":
                break
        states = [event["state"] for event in seen if event["job"] == view["id"]]
        assert states == ["queued", "running", "done"]

    def test_malformed_submission_is_a_client_error(self, server):
        with pytest.raises(RemoteError) as info:
            server.client._request("POST", "/jobs", {"workload": {"nonsense": 1}})
        assert "HTTP 400" in str(info.value)

    def test_unknown_routes_are_404(self, server):
        with pytest.raises(RemoteError) as info:
            server.client._request("GET", "/no/such/route")
        assert "HTTP 404" in str(info.value)


class TestServerFailurePaths:
    def test_executor_failure_reported_as_failed_job(self, tmp_path):
        handle = _start_server_thread(
            tmp_path, executor=ExplodingExecutor(PairCrash, "worker died")
        )
        try:
            view = handle.client.submit(tiny_workload("fail-w1"), tiny_config())
            view = handle.client.wait_job(view["id"], timeout=30)
            assert view["state"] == "failed"
            assert view["error"] == {"kind": "crash", "error": "worker died"}
            with pytest.raises(RemoteError) as info:
                handle.client.run_pairs([(tiny_workload("fail-w2"), tiny_config())])
            assert "crash" in str(info.value)
        finally:
            handle.client.drain(grace=5.0)
            handle.thread.join(timeout=30)

    def test_real_timeout_over_http(self, tmp_path):
        handle = _start_server_thread(tmp_path, max_workers=1)
        handle.scheduler.executor.timeout = 1.0
        try:
            view = handle.client._request(
                "POST",
                "/jobs",
                {
                    "workload": workload_to_wire(
                        tiny_workload("fail-w3", n_ctas=4)
                    ),
                    "config": tiny_config().to_dict(),
                },
            )
            view = handle.client.wait_job(view["id"], timeout=60)
            # Tiny pairs finish well inside a second, so this normally
            # completes; the point is the limit plumbing doesn't break
            # the happy path.  (The genuinely-hung path is covered by
            # TestPairExecutor.test_timeout_kills_the_worker.)
            assert view["state"] in ("done", "failed")
        finally:
            handle.client.drain(grace=10.0)
            handle.thread.join(timeout=30)


class TestDrain:
    def test_drain_writes_store_and_stops_intake(self, tmp_path):
        handle = _start_server_thread(tmp_path)
        workload = tiny_workload("drain-w1")
        config = tiny_config()
        view = handle.client.submit(workload, config)
        handle.client.wait_job(view["id"], timeout=120)
        summary = handle.client.drain(grace=10.0)
        assert summary["drained"] is True
        store_path = tmp_path / "store.json"
        assert store_path.is_file()
        snapshot = json.loads(store_path.read_text())
        assert snapshot["counts"]["done"] == 1
        with pytest.raises(RemoteError):
            handle.client.submit(workload, config)
        handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()


# ----------------------------------------------------------------------
# remote explore runner
# ----------------------------------------------------------------------


class TestRemoteRunner:
    def test_matches_local_run_suites_and_accounts_metrics(self, server):
        from repro.explore import remote_runner

        configs = [tiny_config(), tiny_config(link_bandwidth=384.0)]
        workloads = [
            tiny_workload("rr-w1"),
            tiny_workload("rr-w2", pattern="hotset"),
        ]
        runner = remote_runner(server.client, timeout=120.0)
        remote = runner(configs, workloads)
        local = run_suites(configs, workloads=workloads, cache=None, max_workers=1)
        assert [
            {name: result.to_dict() for name, result in per_config.items()}
            for per_config in remote
        ] == [
            {name: result.to_dict() for name, result in per_config.items()}
            for per_config in local
        ]
        sink = runner.metrics
        assert sink.total_pairs == 4
        assert sink.cached_pairs == 0
        assert sum(sink.sims_by_config.values()) == 4
        warm = runner(configs, workloads)
        assert [
            {name: result.to_dict() for name, result in per_config.items()}
            for per_config in warm
        ] == [
            {name: result.to_dict() for name, result in per_config.items()}
            for per_config in local
        ]
        assert sink.total_pairs == 8
        assert sink.cached_pairs == 4
