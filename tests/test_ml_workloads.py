"""Tests for the ML-era pattern families, suite, study, and fidelity gate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ml_workloads as ml_experiment
from repro.validate.fidelity import evaluate_ml_checks
from repro.workloads.characterize import cached_profile
from repro.workloads.patterns import (
    PATTERNS,
    AllReducePattern,
    AttentionPattern,
    BurstyPattern,
    GemmTilePattern,
    ZipfianPattern,
    make_pattern,
    register_pattern,
)
from repro.workloads.rng import rng_for
from repro.workloads.suite import ml_specs, ml_workloads, spec_by_name
from repro.workloads.synthetic import Category, SyntheticWorkload

ML_PATTERN_NAMES = ["gemm_tile", "attention", "allreduce", "zipfian", "bursty"]


class TestRegistry:
    def test_ml_patterns_registered(self):
        for name in ML_PATTERN_NAMES:
            assert name in PATTERNS
            assert isinstance(make_pattern(name), PATTERNS[name])

    def test_pattern_name_attached_by_decorator(self):
        assert GemmTilePattern.pattern_name == "gemm_tile"
        assert ZipfianPattern.pattern_name == "zipfian"

    def test_unknown_name_lists_registered_names(self):
        with pytest.raises(ValueError, match="gemm_tile") as excinfo:
            make_pattern("flashfusion")
        message = str(excinfo.value)
        for name in ("streaming", "attention", "zipfian"):
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pattern("zipfian")(ZipfianPattern)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(ML_PATTERN_NAMES),
    cta=st.integers(min_value=0, max_value=15),
    n_accesses=st.integers(min_value=1, max_value=200),
    footprint=st.integers(min_value=64, max_value=4096),
)
def test_ml_patterns_produce_valid_addresses(name, cta, n_accesses, footprint):
    """Property: every ML pattern yields n in-footprint line addresses."""
    pattern = make_pattern(name)
    kwargs = {"kernel_index": 2} if pattern.kernel_indexed else {}
    addrs = pattern.generate(cta, 16, n_accesses, footprint, rng_for(name, cta), **kwargs)
    assert len(addrs) == n_accesses
    assert addrs.min() >= 0
    assert addrs.max() < footprint


class TestGemmTile:
    def test_deterministic(self):
        pattern = GemmTilePattern()
        assert not pattern.kernel_variant and not pattern.kernel_indexed
        a = pattern.generate(3, 16, 200, 2048, rng_for("g", 3))
        b = pattern.generate(3, 16, 200, 2048, rng_for("g", 3))
        assert np.array_equal(a, b)

    def test_tiles_share_panels(self):
        """CTAs in the same grid row re-read the same A panel lines."""
        pattern = GemmTilePattern(k_steps=2, c_fraction=0.1)
        a = set(map(int, pattern.generate(0, 16, 400, 4096, rng_for("g", 0))))
        b = set(map(int, pattern.generate(1, 16, 400, 4096, rng_for("g", 1))))
        assert a & b  # shared panel traffic exists


class TestAttention:
    def test_causal_prefix_grows_with_cta(self):
        """Later CTAs (later queries) may gather from a longer KV prefix."""
        pattern = AttentionPattern(kv_fraction=0.5, gather_fraction=1.0, sink_fraction=0.0)
        footprint, n_ctas = 4096, 16
        kv_lines = int(footprint * 0.5)
        early = pattern.generate(0, n_ctas, 500, footprint, rng_for("a", 0))
        late = pattern.generate(15, n_ctas, 500, footprint, rng_for("a", 15))
        assert early.max() < kv_lines * (0 + 1) // n_ctas + 1
        assert late.max() > early.max()

    def test_sink_lines_are_hot(self):
        pattern = AttentionPattern(sink_fraction=0.4, sink_lines=16, gather_fraction=1.0)
        addrs = pattern.generate(8, 16, 4000, 4096, rng_for("a", 8))
        assert (addrs < 16).mean() > 0.25


class TestAllReduce:
    def test_kernel_indexed(self):
        assert AllReducePattern().kernel_indexed

    def test_peer_rotates_with_kernel_index(self):
        """Different ring steps exchange with different peer chunks."""
        pattern = AllReducePattern()
        step0 = set(map(int, pattern.generate(0, 8, 400, 4096, rng_for("r", 0), kernel_index=0)))
        step1 = set(map(int, pattern.generate(0, 8, 400, 4096, rng_for("r", 0), kernel_index=1)))
        assert step0 != step1

    def test_touches_own_and_peer_chunks(self):
        pattern = AllReducePattern(accum_ratio=0.5)
        cta, n_ctas, footprint = 2, 8, 4096
        addrs = pattern.generate(cta, n_ctas, 400, footprint, rng_for("r", cta), kernel_index=0)
        chunk = footprint // n_ctas
        own = ((addrs >= cta * chunk) & (addrs < (cta + 1) * chunk)).sum()
        assert own > 0
        assert own < len(addrs)  # peer traffic present too


class TestZipfian:
    def test_hot_head_concentration(self):
        """Zipf(alpha~1): a tiny head of lines absorbs most gathers."""
        pattern = ZipfianPattern(alpha=1.0, stream_fraction=0.0)
        addrs = pattern.generate(0, 8, 20000, 8192, rng_for("z", 0))
        _, counts = np.unique(addrs, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[: len(top) // 100 + 1].sum() / counts.sum() > 0.10

    def test_kernel_variant(self):
        assert ZipfianPattern().kernel_variant


class TestBursty:
    def test_contains_sequential_runs(self):
        pattern = BurstyPattern(burst_lines=16, hot_fraction=0.0)
        addrs = pattern.generate(0, 8, 256, 65536, rng_for("b", 0))
        deltas = np.diff(addrs)
        assert (deltas == 1).mean() > 0.7  # mostly intra-burst steps

    def test_hot_experts_absorb_traffic(self):
        pattern = BurstyPattern(hot_fraction=0.9, n_hot=2, hot_region_lines=64, burst_lines=8)
        footprint = 65536
        addrs = pattern.generate(0, 8, 4000, footprint, rng_for("b", 0))
        # Experts are evenly spaced: regions at 0 and footprint // 2, each
        # hot_region_lines + burst run long.
        spacing = footprint // 2
        within = (addrs % spacing) < 64 + 8
        assert within.mean() > 0.6


class TestMLSuite:
    def test_eight_specs_unique_names(self):
        specs = ml_specs()
        assert len(specs) == 8
        assert len({spec.name for spec in specs}) == 8
        assert all(spec.suite == "ML" for spec in specs)

    def test_spec_by_name_finds_ml_workloads(self):
        assert spec_by_name("GEMM-Fwd").pattern == "gemm_tile"
        assert spec_by_name("Attn-Decode").category is Category.LIMITED_PARALLELISM

    def test_fast_factor_shrinks(self):
        full = ml_workloads()
        fast = ml_workloads(fast_factor=0.0625)
        for a, b in zip(full, fast):
            assert b.spec.n_ctas <= a.spec.n_ctas

    def test_each_family_characterizes(self):
        for name in ("GEMM-Fwd", "Attn-Decode", "AllReduce-Ring", "DLRM-Embed", "MoE-Gate"):
            workload = SyntheticWorkload(spec_by_name(name).scaled_down(0.03))
            profile = cached_profile(workload)
            assert profile.n_ctas > 0
            assert 0.0 <= profile.hot_concentration <= 1.0

    def test_zipfian_concentrates_more_than_gemm(self):
        dlrm = SyntheticWorkload(spec_by_name("DLRM-Embed").scaled_down(0.0625))
        gemm = SyntheticWorkload(spec_by_name("GEMM-Fwd").scaled_down(0.0625))
        assert (
            cached_profile(dlrm).hot_concentration
            > cached_profile(gemm).hot_concentration
        )


class TestMLStudy:
    def stub_suites(self, l15_cycles, opt_cycles):
        """Fake run_suites: baseline 1000 cycles, others as given."""
        from repro.memory.cache import CacheStats
        from repro.sim.result import SimResult
        from repro.workloads.suite import all_specs

        def result(name, cycles):
            return SimResult(
                workload_name=name, system_name="stub", cycles=cycles,
                kernels=1, ctas=1, records=1, loads=100, stores=0,
                remote_loads=20, remote_stores=0,
                l1=CacheStats(), l15=CacheStats(), l2=CacheStats(),
                dram_bytes_read=0, dram_bytes_written=0, link_bytes=10,
                page_local=80, page_remote=20,
            )

        def fake(configs, workloads=None, cache=None, max_workers=None, progress=None):
            names = (
                [w.name for w in workloads]
                if workloads is not None
                else [spec.name for spec in all_specs()]
            )
            return [
                {name: result(name, cycles) for name in names}
                for cycles in (1000.0, l15_cycles, opt_cycles)
            ]

        return fake

    def test_conclusions_hold_when_ml_keeps_the_gains(self, monkeypatch):
        monkeypatch.setattr(ml_experiment, "run_suites", self.stub_suites(900.0, 800.0))
        monkeypatch.setattr(
            ml_experiment, "cached_profile",
            lambda workload, **kw: type(
                "P", (), {"hot_concentration": 0.5, "shared_line_fraction": 0.1,
                          "store_fraction": 0.2},
            )(),
        )
        study = ml_experiment.run_ml_workloads(fast_factor=0.0625)
        assert all(verdict.holds for verdict in study.verdicts)
        assert study.ml_total == 8
        text = ml_experiment.report(study)
        assert "HOLDS" in text and "BREAKS" not in text

    def test_conclusions_break_when_ml_loses_the_gains(self, monkeypatch):
        def fake(configs, workloads=None, cache=None, max_workers=None, progress=None):
            if workloads is not None and len(list(workloads)) == 8:
                return self.stub_suites(1100.0, 1200.0)(configs, workloads=workloads)
            return self.stub_suites(900.0, 800.0)(configs, workloads=workloads)

        monkeypatch.setattr(ml_experiment, "run_suites", fake)
        monkeypatch.setattr(
            ml_experiment, "cached_profile",
            lambda workload, **kw: type(
                "P", (), {"hot_concentration": 0.5, "shared_line_fraction": 0.1,
                          "store_fraction": 0.2},
            )(),
        )
        study = ml_experiment.run_ml_workloads(fast_factor=0.0625)
        assert not any(verdict.holds for verdict in study.verdicts)
        assert "BREAKS" in ml_experiment.report(study)


class TestMLFidelityBands:
    def passing_data(self):
        names = [spec.name for spec in ml_specs()]
        return {
            "l15": {name: 1.12 for name in names},
            "opt": {name: 1.22 for name in names},
            "allreduce_link_per_record": 940.0,
        }

    def test_measured_values_pass(self):
        checks = evaluate_ml_checks(self.passing_data())
        assert len(checks) == 7
        assert all(check.passed for check in checks)

    def test_l15_collapse_fails_low(self):
        data = self.passing_data()
        data["l15"] = {name: 0.90 for name in data["l15"]}
        checks = {check.name: check for check in evaluate_ml_checks(data)}
        assert not checks["ml-l15-geomean"].passed

    def test_over_reward_fails_high(self):
        data = self.passing_data()
        data["opt"] = {name: 2.5 for name in data["opt"]}
        checks = {check.name: check for check in evaluate_ml_checks(data)}
        assert not checks["ml-optimized-geomean"].passed

    def test_lost_exchange_fails(self):
        data = self.passing_data()
        data["allreduce_link_per_record"] = 5.0
        checks = {check.name: check for check in evaluate_ml_checks(data)}
        assert not checks["ml-allreduce-link-per-record"].passed
