"""Unit tests for address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import AddressMap, is_power_of_two


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, 3, 6, 12, 100, -8):
            assert not is_power_of_two(value)


class TestAddressMapValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="line_bytes"):
            AddressMap(line_bytes=96, page_bytes=1024)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ValueError, match="page_bytes"):
            AddressMap(line_bytes=128, page_bytes=1000)

    def test_rejects_page_smaller_than_line(self):
        with pytest.raises(ValueError, match="multiple"):
            AddressMap(line_bytes=128, page_bytes=64)


class TestAddressMapMath:
    def setup_method(self):
        self.amap = AddressMap(line_bytes=128, page_bytes=2048)

    def test_lines_per_page(self):
        assert self.amap.lines_per_page == 16

    def test_line_of_byte(self):
        assert self.amap.line_of_byte(0) == 0
        assert self.amap.line_of_byte(127) == 0
        assert self.amap.line_of_byte(128) == 1

    def test_byte_of_line_inverts(self):
        assert self.amap.byte_of_line(self.amap.line_of_byte(12800)) == 12800

    def test_page_of_line(self):
        assert self.amap.page_of_line(0) == 0
        assert self.amap.page_of_line(15) == 0
        assert self.amap.page_of_line(16) == 1

    def test_page_of_byte_consistent_with_page_of_line(self):
        for byte_addr in (0, 100, 2047, 2048, 123456):
            assert self.amap.page_of_byte(byte_addr) == self.amap.page_of_line(
                self.amap.line_of_byte(byte_addr)
            )

    def test_footprint_rounding(self):
        assert self.amap.lines_in_footprint(1) == 1
        assert self.amap.lines_in_footprint(128) == 1
        assert self.amap.lines_in_footprint(129) == 2
        assert self.amap.pages_in_footprint(2049) == 2


@given(byte_addr=st.integers(min_value=0, max_value=2**48))
def test_line_page_consistency(byte_addr):
    """A byte's page always contains the byte's line."""
    amap = AddressMap(line_bytes=128, page_bytes=4096)
    line = amap.line_of_byte(byte_addr)
    assert amap.page_of_line(line) == amap.page_of_byte(byte_addr)


@given(
    line=st.integers(min_value=0, max_value=2**40),
    line_exp=st.integers(min_value=5, max_value=9),
    ratio_exp=st.integers(min_value=0, max_value=6),
)
def test_lines_per_page_partitions_lines(line, line_exp, ratio_exp):
    """Exactly lines_per_page consecutive lines share each page."""
    amap = AddressMap(line_bytes=1 << line_exp, page_bytes=1 << (line_exp + ratio_exp))
    page = amap.page_of_line(line)
    first_line_of_page = page * amap.lines_per_page
    assert first_line_of_page <= line < first_line_of_page + amap.lines_per_page
