"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import CacheStats, SetAssocCache, WritePolicy


def make_cache(lines=16, ways=4, policy=WritePolicy.WRITE_BACK):
    return SetAssocCache(
        size_bytes=lines * 128, line_bytes=128, ways=ways, write_policy=policy
    )


class TestConstruction:
    def test_geometry(self):
        cache = make_cache(lines=64, ways=4)
        assert cache.n_sets == 16
        assert cache.ways == 4
        assert cache.capacity_lines == 64

    def test_zero_capacity_always_misses(self):
        cache = SetAssocCache(size_bytes=0)
        assert not cache.enabled
        hit, writeback = cache.access(1)
        assert not hit
        assert writeback is None
        hit, _ = cache.access(1)
        assert not hit

    def test_disabled_cache_no_allocate_probe_is_bypass(self):
        """Regression: the zero-capacity early return used to count every
        access as a miss even under ``allocate=False``, where an enabled
        cache (and ``touch_store``) counts a bypass — breaking the
        "every store is a write_hit or a bypass" law at disabled levels."""
        cache = SetAssocCache(size_bytes=0)
        hit, writeback = cache.access(5, is_write=True, allocate=False)
        assert not hit
        assert writeback is None
        assert cache.stats.bypasses == 1
        assert cache.stats.misses == 0
        assert cache.stats.write_misses == 0
        assert cache.stats.accesses == 0  # bypasses are not lookups
        # An allocating access still reports the plain miss.
        cache.access(5, is_write=True)
        assert cache.stats.misses == 1
        assert cache.stats.write_misses == 1
        assert cache.stats.bypasses == 1

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError, match="size_bytes"):
            SetAssocCache(size_bytes=-1)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError, match="line_bytes"):
            SetAssocCache(size_bytes=1024, line_bytes=100)

    def test_rejects_sub_line_capacity(self):
        with pytest.raises(ValueError, match="smaller than one line"):
            SetAssocCache(size_bytes=64, line_bytes=128)

    def test_clamps_associativity_to_capacity(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=16)
        assert cache.ways == 2


class TestHitMiss:
    def test_first_access_misses_second_hits(self):
        cache = make_cache()
        hit, _ = cache.access(42)
        assert not hit
        hit, _ = cache.access(42)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_no_allocate_miss_does_not_install(self):
        cache = make_cache()
        cache.access(7, allocate=False)
        assert not cache.probe(7)
        assert cache.stats.bypasses == 1

    def test_probe_does_not_touch_lru(self):
        cache = make_cache(lines=4, ways=2)
        # Set 0 holds lines 0 and 2 (2 sets); fill one set.
        cache.access(0)
        cache.access(2)
        cache.probe(0)  # must NOT refresh line 0
        cache.access(4)  # evicts LRU of set 0 = line 0
        assert not cache.probe(0)
        assert cache.probe(2)
        assert cache.probe(4)


class TestLRU:
    def test_lru_eviction_order(self):
        cache = SetAssocCache(size_bytes=4 * 128, ways=4)  # 1 set, 4 ways
        for line in range(4):
            cache.access(line)
        cache.access(0)  # refresh 0 -> LRU is now 1
        cache.access(99)  # evict 1
        assert cache.probe(0)
        assert not cache.probe(1)
        assert cache.probe(2)
        assert cache.probe(99)

    def test_set_isolation(self):
        cache = SetAssocCache(size_bytes=8 * 128, ways=4)  # 2 sets
        # Fill set 0 beyond capacity; set 1 untouched.
        for line in (0, 2, 4, 6, 8):
            cache.access(line)
        cache.access(1)
        assert cache.probe(1)
        assert not cache.probe(0)  # evicted from set 0


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=2)  # 1 set, 2 ways
        cache.access(1, is_write=True)
        cache.access(2)
        hit, writeback = cache.access(3)
        assert not hit
        assert writeback == 1
        assert cache.stats.writebacks == 1

    def test_clean_eviction_has_no_writeback(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=2)
        cache.access(1)
        cache.access(2)
        _, writeback = cache.access(3)
        assert writeback is None

    def test_write_through_never_dirty(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=2, write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(1, is_write=True)
        cache.access(2, is_write=True)
        _, writeback = cache.access(3)
        assert writeback is None
        assert cache.flush() == []

    def test_write_hit_marks_dirty(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=2)
        cache.access(5)  # clean install
        cache.access(5, is_write=True)  # dirty on hit
        assert sorted(cache.flush()) == [5]


class TestFlush:
    def test_flush_empties_and_returns_dirty(self):
        cache = make_cache()
        cache.access(1, is_write=True)
        cache.access(2)
        dirty = cache.flush()
        assert dirty == [1]
        assert cache.resident_lines() == 0
        assert cache.stats.flushes == 1
        hit, _ = cache.access(2)
        assert not hit


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        merged = CacheStats(hits=1, misses=2).merge(CacheStats(hits=3, writebacks=4))
        assert merged.hits == 4
        assert merged.misses == 2
        assert merged.writebacks == 4


@settings(max_examples=50, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300),
    ways=st.integers(min_value=1, max_value=8),
    n_lines_exp=st.integers(min_value=2, max_value=6),
)
def test_occupancy_never_exceeds_capacity(addrs, ways, n_lines_exp):
    """Property: resident lines never exceed capacity, stats always add up."""
    lines = 1 << n_lines_exp
    cache = SetAssocCache(size_bytes=lines * 128, ways=ways)
    for addr in addrs:
        cache.access(addr)
    assert cache.resident_lines() <= cache.capacity_lines
    assert cache.stats.accesses == len(addrs)


@settings(max_examples=50, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
def test_repeat_access_within_small_working_set_hits(addrs):
    """Property: a working set smaller than one set's ways never misses twice."""
    cache = SetAssocCache(size_bytes=64 * 128, ways=64)  # fully associative, 64 lines
    seen = set()
    for addr in addrs:
        hit, _ = cache.access(addr)
        assert hit == (addr in seen)
        seen.add(addr)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=60), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
def test_every_dirty_line_is_eventually_accounted(ops):
    """Property: dirty lines leave only via writeback-on-evict or flush."""
    cache = SetAssocCache(size_bytes=8 * 128, ways=4)
    written = set()
    evicted_dirty = []
    for addr, is_write in ops:
        _, writeback = cache.access(addr, is_write=is_write)
        if is_write:
            written.add(addr)
        if writeback is not None:
            evicted_dirty.append(writeback)
    flushed = cache.flush()
    # Every line reported dirty was written at some point.
    for addr in evicted_dirty + flushed:
        assert addr in written


class TestResetStats:
    def test_reset_stats_zeroes_counters_and_keeps_contents(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.stats.flushes == 0
        assert cache.resident_lines() == 1
        hit, _ = cache.access(1)
        assert hit  # contents untouched

    def test_disabled_cache_flush_counts_nothing(self):
        cache = SetAssocCache(size_bytes=0)
        assert cache.flush() == []
        assert cache.stats.flushes == 0
        assert cache.stats.writebacks == 0

    def test_enabled_cache_flush_still_counts(self):
        cache = make_cache()
        cache.flush()
        assert cache.stats.flushes == 1

    def test_sm_reset_uses_reset_stats(self):
        from repro.core.presets import baseline_mcm_gpu
        from repro.core.sm import SM

        config = baseline_mcm_gpu()
        sm = SM(0, 0, config.gpm.sm)
        sm.l1.access(1)
        sm.charge_issue(0.0, 8)
        sm.reset()
        assert sm.l1.stats.accesses == 0
        assert sm.l1.stats.flushes == 0  # the reset flush is not pollution
        assert sm.issue_busy_cycles == 0.0
