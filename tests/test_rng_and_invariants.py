"""Tests for deterministic seeding and cross-cutting simulation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from repro.sim.engine import SimulationEngine
from repro.workloads.rng import rng_for, stable_seed
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2) == stable_seed("a", 1, 2)

    def test_distinguishes_parts(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 12) != stable_seed("a1", 2)

    def test_rng_reproducible(self):
        a = rng_for("workload", 3).integers(0, 1000, size=10)
        b = rng_for("workload", 3).integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_rng_streams_independent(self):
        a = rng_for("x", 0).integers(0, 1_000_000, size=8)
        b = rng_for("x", 1).integers(0, 1_000_000, size=8)
        assert list(a) != list(b)


def run_spec(**overrides):
    base = dict(
        name="inv",
        category=Category.M_INTENSIVE,
        pattern="streaming",
        n_ctas=48,
        groups_per_cta=2,
        records_per_group=3,
        accesses_per_record=3,
        write_fraction=0.25,
        compute_per_record=4.0,
        kernel_iterations=2,
        footprint_bytes=512 * 1024,
    )
    base.update(overrides)
    workload = SyntheticWorkload(WorkloadSpec(**base))
    system = build_system(mcm_gpu_with_l15(16, remote_only=True, n_gpms=4, sms_per_gpm=2))
    result = SimulationEngine(system).run(workload)
    return workload, system, result


class TestConservationInvariants:
    def test_access_conservation(self):
        """Loads + stores equal the trace's access count exactly."""
        workload, _, result = run_spec()
        assert result.accesses == workload.spec.total_accesses()

    def test_l1_sees_every_load(self):
        _, _, result = run_spec(write_fraction=0.0)
        assert result.l1.accesses == result.loads

    def test_routed_requests_partition_into_local_and_remote(self):
        _, system, result = run_spec()
        routed = result.page_local + result.page_remote
        # Every L1 load miss and every store is routed exactly once.
        assert routed == result.l1.misses + result.stores

    def test_remote_loads_bounded_by_routed_remote(self):
        _, _, result = run_spec()
        assert result.remote_loads + result.remote_stores == result.page_remote

    def test_dram_reads_equal_l2_misses(self):
        """Every L2 miss (read or write-allocate) fetches one line."""
        _, system, result = run_spec()
        assert result.dram_bytes_read == result.l2.misses * 128

    def test_dram_writes_equal_l2_writebacks(self):
        _, _, result = run_spec(write_fraction=0.5, footprint_bytes=2 << 20)
        assert result.dram_bytes_written == result.l2.writebacks * 128

    def test_bandwidth_within_physical_limits(self):
        _, _, result = run_spec(write_fraction=0.4, compute_per_record=0.5)
        config_total = 4 * 768.0
        assert result.dram_bandwidth <= config_total * 1.01


@settings(max_examples=10, deadline=None)
@given(
    n_ctas=st.integers(min_value=4, max_value=64),
    wf=st.sampled_from([0.0, 0.25, 0.5]),
    pattern=st.sampled_from(["streaming", "irregular", "hotset", "banded"]),
)
def test_simulation_invariants_hold_for_any_workload(n_ctas, wf, pattern):
    """Property: conservation laws hold across patterns and sizes."""
    workload = SyntheticWorkload(
        WorkloadSpec(
            name=f"prop-{pattern}",
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=n_ctas,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            write_fraction=wf,
            compute_per_record=2.0,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )
    system = build_system(baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2))
    result = SimulationEngine(system).run(workload)
    assert result.accesses == workload.spec.total_accesses()
    assert result.ctas == n_ctas
    assert result.cycles > 0
    assert result.page_local + result.page_remote == result.l1.misses + result.stores
    assert result.dram_bytes_read == result.l2.misses * 128
