"""Unit tests for the Section 3.3.1 analytical bandwidth model."""

import pytest

from repro.core.analytical import (
    average_hops,
    expected_slowdown_bound,
    required_link_bandwidth,
    ring_average_hops,
    supply_bandwidth_per_partition,
    topology_link_count,
    topology_ports,
)


class TestSupplyBandwidth:
    def test_fifty_percent_hit_doubles_supply(self):
        """The paper's assumption: ~50% L2 hit -> each slice supplies 2b."""
        assert supply_bandwidth_per_partition(768.0, 0.5) == pytest.approx(1536.0)

    def test_zero_hit_rate_passthrough(self):
        assert supply_bandwidth_per_partition(768.0, 0.0) == pytest.approx(768.0)

    def test_rejects_invalid_hit_rate(self):
        with pytest.raises(ValueError, match="l2_hit_rate"):
            supply_bandwidth_per_partition(768.0, 1.0)


class TestRingHops:
    def test_four_gpm_ring(self):
        assert ring_average_hops(4) == pytest.approx(4.0 / 3.0)

    def test_two_nodes(self):
        assert ring_average_hops(2) == 1.0

    def test_single_node(self):
        assert ring_average_hops(1) == 0.0


class TestTopologyCounts:
    def test_ring_ports_and_links(self):
        assert topology_ports(4) == 4
        assert topology_link_count(4) == 8
        # The degenerate two-node "ring" has one neighbor pair.
        assert topology_ports(2) == 2
        assert topology_link_count(2) == 2
        assert topology_ports(1) == 0
        assert topology_link_count(1) == 0

    def test_fully_connected_ports_and_links(self):
        assert topology_ports(4, "fully_connected") == 6
        assert topology_link_count(4, "fully_connected") == 12
        assert average_hops(4, "fully_connected") == 1.0
        assert average_hops(1, "fully_connected") == 0.0

    def test_unknown_topology_rejected(self):
        # "torus" is a registered fabric now; a genuinely unknown name
        # must still fail loudly everywhere the registry dispatches.
        with pytest.raises(ValueError, match="topology"):
            topology_ports(4, "hypercube")
        with pytest.raises(ValueError, match="topology"):
            topology_link_count(4, "hypercube")
        with pytest.raises(ValueError, match="topology"):
            average_hops(4, "hypercube")

    def test_registry_fabrics_dispatch(self):
        # The registry answers for every fabric: a 4-node torus is a
        # doubled ring (each wraparound fuses with the mesh edge), and
        # the 2x2 mesh is a 4-cycle.
        assert topology_ports(4, "mesh") == 4
        assert topology_link_count(4, "mesh") == 8
        assert average_hops(4, "mesh") == pytest.approx(4.0 / 3.0)
        assert average_hops(9, "torus") < average_hops(9, "mesh")


class TestRequiredBandwidth:
    def test_paper_example_4b(self):
        """Section 3.3.1: 4 GPMs, b=768 GB/s, h=50% -> 4b per-GPM demand."""
        req = required_link_bandwidth(4, 768.0, 0.5)
        assert req.per_gpm_link_demand == pytest.approx(4 * 768.0)
        assert req.egress_per_gpm == pytest.approx(1.5 * 768.0)
        assert req.ingress_per_gpm == req.egress_per_gpm
        assert req.n_links == 8
        assert req.ports_per_gpm == 4

    def test_two_node_ring_regression(self):
        # Regression: the model hard-coded 2n directional links and 4
        # ports per GPM, as if every ring had two distinct neighbors.  A
        # 2-node ring has a single neighbor pair, so each GPM's entire
        # egress rides one directional link (per-link volume used to come
        # out halved).
        req = required_link_bandwidth(2, 768.0, 0.5)
        assert req.n_links == 2
        assert req.ports_per_gpm == 2
        assert req.per_link_volume == pytest.approx(req.egress_per_gpm)
        assert req.per_gpm_link_demand == pytest.approx(
            req.egress_per_gpm + req.ingress_per_gpm
        )

    def test_fully_connected_has_no_passthrough(self):
        # Single-hop delivery: per-GPM demand is exactly egress + ingress,
        # strictly below the ring's (which adds pass-through hops).
        fc = required_link_bandwidth(4, 768.0, 0.5, topology="fully_connected")
        assert fc.per_gpm_link_demand == pytest.approx(
            fc.egress_per_gpm + fc.ingress_per_gpm
        )
        ring = required_link_bandwidth(4, 768.0, 0.5)
        assert fc.per_gpm_link_demand < ring.per_gpm_link_demand

    def test_single_gpm_needs_nothing(self):
        req = required_link_bandwidth(1, 768.0, 0.5)
        assert req.per_gpm_link_demand == 0.0
        assert req.total_link_hop_volume == 0.0

    def test_demand_grows_with_hit_rate(self):
        low = required_link_bandwidth(4, 768.0, 0.2)
        high = required_link_bandwidth(4, 768.0, 0.6)
        assert high.per_gpm_link_demand > low.per_gpm_link_demand

    def test_rejects_bad_gpm_count(self):
        with pytest.raises(ValueError, match="n_gpms"):
            required_link_bandwidth(0, 768.0)


class TestSlowdownBound:
    def test_sufficient_links_no_slowdown(self):
        assert expected_slowdown_bound(4000.0, 3072.0) == 1.0

    def test_undersized_links_throttle(self):
        assert expected_slowdown_bound(1536.0, 3072.0) == pytest.approx(0.5)

    def test_zero_requirement(self):
        assert expected_slowdown_bound(100.0, 0.0) == 1.0

    def test_consistent_with_fig4_narrative(self):
        """Low link settings bound throughput; 1.5 TB/s is the break-even."""
        req = required_link_bandwidth(4, 768.0, 0.5)
        # A setting of s yields per-GPM port capacity 2s (4 half-duplex ports).
        assert expected_slowdown_bound(2 * 6144.0, req.per_gpm_link_demand) == 1.0
        assert expected_slowdown_bound(2 * 1536.0, req.per_gpm_link_demand) == 1.0
        assert expected_slowdown_bound(2 * 768.0, req.per_gpm_link_demand) == pytest.approx(0.5)
        assert expected_slowdown_bound(2 * 384.0, req.per_gpm_link_demand) == pytest.approx(0.25)
