"""Smoke tests: every example script runs end-to-end.

The examples use the suite workloads at full size, which is benchmark-scale
work, so each script is executed with a private fast cache and — where the
script supports it — its fast mode.  The goal is import-and-run coverage,
not timing.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SCRIPTS_DIR = Path(__file__).resolve().parents[1] / "scripts"


def run_script(path, args, tmp_path, timeout=600):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, tmp_path):
        result = run_script(EXAMPLES_DIR / "quickstart.py", ["CFD"], tmp_path)
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert "inter-GPM bandwidth" in result.stdout

    def test_locality_optimizations(self, tmp_path):
        result = run_script(
            EXAMPLES_DIR / "locality_optimizations.py", ["SSSP"], tmp_path
        )
        assert result.returncode == 0, result.stderr
        assert "first touch" in result.stdout

    def test_run_experiment_lists(self, tmp_path):
        result = run_script(SCRIPTS_DIR / "run_experiment.py", [], tmp_path)
        assert result.returncode == 0, result.stderr
        assert "fig4" in result.stdout
        assert "table3" in result.stdout

    def test_run_experiment_static_table(self, tmp_path):
        result = run_script(SCRIPTS_DIR / "run_experiment.py", ["table1"], tmp_path)
        assert result.returncode == 0, result.stderr
        assert "Pascal" in result.stdout

    def test_run_experiment_rejects_unknown(self, tmp_path):
        result = run_script(SCRIPTS_DIR / "run_experiment.py", ["fig99"], tmp_path)
        assert result.returncode == 1
        assert "unknown" in result.stderr
