"""Unit and property tests for the bucketed bandwidth pipe."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.bandwidth import BandwidthPipe


class TestValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="bytes_per_cycle"):
            BandwidthPipe(0)

    def test_rejects_negative_time(self):
        pipe = BandwidthPipe(100)
        with pytest.raises(ValueError, match="non-negative"):
            pipe.transfer(-1.0, 10)


class TestSerialization:
    def test_single_transfer_duration(self):
        pipe = BandwidthPipe(128.0)
        finish = pipe.transfer(0.0, 128)
        assert finish == pytest.approx(1.0)

    def test_uncontended_transfer_is_prompt(self):
        pipe = BandwidthPipe(128.0)
        finish = pipe.transfer(1000.0, 128)
        assert finish == pytest.approx(1001.0)

    def test_contention_queues(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)  # 8 bytes per bucket
        first = pipe.transfer(0.0, 8)
        second = pipe.transfer(0.0, 8)
        assert second > first
        assert second >= 16.0 * 0.99  # second fill lands in the next bucket

    def test_counters(self):
        pipe = BandwidthPipe(10.0)
        pipe.transfer(0.0, 100)
        pipe.transfer(5.0, 50)
        assert pipe.bytes_transferred == 150
        assert pipe.transfers == 2


class TestOrderInsensitivity:
    def test_late_charge_does_not_block_early_one(self):
        """The failure mode of a naive busy_until cursor: a transfer booked
        deep in the future must not delay one booked now."""
        pipe = BandwidthPipe(768.0)
        pipe.transfer(5000.0, 128)
        early = pipe.transfer(0.0, 128)
        assert early < 100.0

    def test_same_demand_same_finish_any_order(self):
        charges = [(0.0, 128), (100.0, 64), (3.0, 256), (50.0, 128)] * 5
        finishes_fwd = []
        pipe = BandwidthPipe(4.0, bucket_cycles=16.0)
        for now, size in charges:
            finishes_fwd.append(pipe.transfer(now, size))
        pipe2 = BandwidthPipe(4.0, bucket_cycles=16.0)
        total_fwd = pipe.bytes_transferred
        for now, size in reversed(charges):
            pipe2.transfer(now, size)
        assert pipe2.bytes_transferred == total_fwd
        # Aggregate completion (the last byte served) matches regardless of
        # arrival order.
        assert pipe2.busy_until == pytest.approx(max(finishes_fwd), rel=0.25)


class TestUtilization:
    def test_utilization_fraction(self):
        pipe = BandwidthPipe(10.0)
        pipe.transfer(0.0, 50)
        assert pipe.utilization(10.0) == pytest.approx(0.5)

    def test_zero_elapsed(self):
        assert BandwidthPipe(10.0).utilization(0.0) == 0.0


class TestReset:
    def test_reset_clears_everything(self):
        pipe = BandwidthPipe(1.0)
        pipe.transfer(0.0, 100)
        pipe.reset()
        assert pipe.bytes_transferred == 0
        assert pipe.busy_until == 0.0
        finish = pipe.transfer(0.0, 1)
        assert finish <= 16.0  # first bucket again


@settings(max_examples=60, deadline=None)
@given(
    charges=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.integers(min_value=1, max_value=4096),
        ),
        min_size=1,
        max_size=100,
    ),
    bandwidth=st.floats(min_value=0.5, max_value=1024.0),
)
def test_finish_respects_serialization_floor(charges, bandwidth):
    """Property: finish >= now + bytes/bw, and finish is always finite."""
    pipe = BandwidthPipe(bandwidth)
    for now, size in charges:
        finish = pipe.transfer(now, size)
        assert finish >= now + size / bandwidth - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=200),
)
def test_sustained_demand_is_bandwidth_bound(sizes):
    """Property: total service time for a burst is at least bytes/bw."""
    pipe = BandwidthPipe(16.0, bucket_cycles=8.0)
    last = 0.0
    for size in sizes:
        last = max(last, pipe.transfer(0.0, size))
    total_bytes = sum(sizes)
    assert last >= total_bytes / 16.0 - 8.0  # within one bucket of the bound


class TestFullPrefixAdvance:
    """Regression: the full-bucket skip pointer must advance on every way a
    bucket can reach capacity, so a backlogged pipe never rescans known-full
    buckets on admission."""

    def test_fast_path_exact_fill_advances_prefix(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)  # 8 bytes per bucket
        pipe.transfer(0.0, 8)  # fast path: fills bucket 0 exactly
        assert pipe._full_prefix == 1

    def test_slow_path_final_exact_fill_advances_prefix(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)
        pipe.transfer(0.0, 16)  # fills buckets 0 and 1, ending exactly full
        assert pipe._full_prefix == 2

    def test_prefix_hops_over_full_buckets_filled_out_of_order(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)
        # Fill bucket 1 first (out of order); prefix cannot move yet because
        # bucket 0 still has room.
        pipe.transfer(8.0, 8)
        assert pipe._full_prefix == 0
        # Filling bucket 0 must advance the prefix past the already-full
        # bucket 1 in one step, not stop adjacent to it.
        pipe.transfer(0.0, 8)
        assert pipe._full_prefix == 2

    def test_admission_skips_saturated_prefix_without_rescanning(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)
        for _ in range(50):
            pipe.transfer(0.0, 8)  # saturate buckets 0..49 via the fast path
        assert pipe._full_prefix == 50
        # The next charge at now=0 must be admitted directly at the prefix:
        # its first candidate bucket is the first non-full one, so the slow
        # path never iterates over the 50 saturated buckets.
        finish = pipe.transfer(0.0, 8)
        assert finish == pytest.approx(51 * 8.0)
        assert pipe._full_prefix == 51

    def test_prefix_shortcut_is_timing_neutral(self):
        """The skip pointer is a pure scan optimization: charging the same
        demand with and without it yields identical finish times."""
        charges = [(0.0, 8), (0.0, 8), (8.0, 8), (0.0, 4), (16.0, 8), (0.0, 12)]
        optimized = BandwidthPipe(1.0, bucket_cycles=8.0)
        reference = BandwidthPipe(1.0, bucket_cycles=8.0)
        reference._full_prefix = 0  # it always is; scan from zero regardless
        finishes = []
        for now, size in charges:
            finishes.append(optimized.transfer(now, size))
        expected = []
        for now, size in charges:
            reference._full_prefix = 0  # force the rescan path every charge
            expected.append(reference.transfer(now, size))
        assert finishes == pytest.approx(expected)


class TestOccupancyWindows:
    def test_empty_pipe_has_no_windows(self):
        assert BandwidthPipe(16.0).occupancy_windows(4096.0) == []

    def test_windows_aggregate_buckets(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)
        pipe.transfer(0.0, 8)
        pipe.transfer(8.0, 4)
        pipe.transfer(100.0, 2)
        windows = pipe.occupancy_windows(16.0)
        assert windows[0] == (0.0, 12.0)  # buckets 0+1 fold into window 0
        assert (96.0, 2.0) in windows

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="window_cycles"):
            BandwidthPipe(16.0).occupancy_windows(0.0)

    def test_non_multiple_window_width_boundary_bucket(self):
        """Regression: with bucket_cycles=0.3 the float ratio 0.9/0.3 is
        2.9999999999999996, and the old ``int(bucket / ratio)`` assigned
        bucket 3 (start cycle 3 * 0.3 = 0.8999999999999999, i.e. *before*
        the float 0.9 window boundary) to window 1.  The Fraction-exact
        index must keep it in window 0."""
        pipe = BandwidthPipe(10.0, bucket_cycles=0.3)
        pipe.transfer(1.0, 2)  # lands in bucket 3
        assert pipe._used == {3: 2.0}
        assert pipe.occupancy_windows(0.9) == [(0.0, 2.0)]
        # And it aggregates with genuine window-0 buckets rather than
        # opening a spurious second window.
        pipe.transfer(0.0, 1)
        assert pipe.occupancy_windows(0.9) == [(0.0, 3.0)]

    def test_exact_multiple_window_width_unchanged(self):
        pipe = BandwidthPipe(1.0, bucket_cycles=8.0)
        for bucket in range(6):
            pipe.transfer(bucket * 8.0, 2)
        windows = pipe.occupancy_windows(16.0)
        assert windows == [(0.0, 4.0), (16.0, 4.0), (32.0, 4.0)]


class TestConservation:
    """No byte is created or lost by the reservation algorithm: the bucket
    map always holds exactly the bytes charged, and no bucket ever exceeds
    its capacity — across out-of-order arrivals and both the single-bucket
    fast path and the spilling slow path."""

    @staticmethod
    def _assert_conserved(pipe, expected_bytes):
        assert sum(pipe._used.values()) == expected_bytes
        assert pipe.bytes_transferred == expected_bytes
        assert pipe.overfull_buckets() == []

    def test_fast_path_conserves(self):
        pipe = BandwidthPipe(4.0, bucket_cycles=16.0)  # 64 bytes per bucket
        total = 0
        for now, size in [(0.0, 32), (500.0, 16), (10.0, 32), (0.0, 16)]:
            pipe.transfer(now, size)
            total += size
        self._assert_conserved(pipe, total)

    def test_slow_path_spill_conserves(self):
        pipe = BandwidthPipe(4.0, bucket_cycles=16.0)
        pipe.transfer(0.0, 1000)  # spills across 16 buckets
        self._assert_conserved(pipe, 1000)

    def test_seeded_out_of_order_charges_conserve(self):
        import random

        rng = random.Random(0xC0FFEE)
        pipe = BandwidthPipe(4.0, bucket_cycles=16.0)
        total = 0
        for _ in range(500):
            now = rng.uniform(0.0, 2000.0)
            # Sizes up to 4x bucket capacity exercise both paths; the low
            # time range forces heavy contention and prefix skipping.
            size = rng.randint(1, 256)
            pipe.transfer(now, size)
            total += size
        self._assert_conserved(pipe, total)

    @settings(max_examples=60, deadline=None)
    @given(
        charges=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
                st.integers(min_value=1, max_value=512),
            ),
            min_size=1,
            max_size=120,
        ),
    )
    def test_conservation_property(self, charges):
        # Integer bucket capacity (1.0 * 16.0) keeps every split exact, so
        # the conservation law holds with == rather than approx.
        pipe = BandwidthPipe(1.0, bucket_cycles=16.0)
        for now, size in charges:
            pipe.transfer(now, size)
        self._assert_conserved(pipe, sum(size for _, size in charges))

    def test_transfer_run_conserves(self):
        pipe = BandwidthPipe(4.0, bucket_cycles=16.0)
        pipe.transfer_run(0.0, 128, 7)
        assert sum(pipe._used.values()) == 128 * 7
        assert pipe.bytes_transferred == 128 * 7
        assert pipe.transfers == 7
        assert pipe.overfull_buckets() == []


class TestReserveMatchesTransfer:
    """``reserve``/``reserve_run`` (the walker codegen's inline fallback)
    must reproduce ``transfer``'s bucket walk exactly; only the floor,
    counters, and busy_until bookkeeping are left to the caller."""

    def test_reserve_finish_and_buckets_match_transfer(self):
        import random

        rng = random.Random(2026)
        charges = [
            (rng.uniform(0.0, 1500.0), rng.randint(1, 256)) for _ in range(300)
        ]
        ref = BandwidthPipe(4.0, bucket_cycles=16.0)
        fast = BandwidthPipe(4.0, bucket_cycles=16.0)
        for now, size in charges:
            expected = ref.transfer(now, size)
            finish = fast.reserve(now, size)
            floor = now + size / fast.bytes_per_cycle
            if finish < floor:
                finish = floor
            assert finish == expected
        assert fast._used == ref._used
        assert fast._full_prefix == ref._full_prefix
        # reserve leaves the deferred bookkeeping untouched.
        assert fast.bytes_transferred == 0
        assert fast.transfers == 0
        assert fast.busy_until == 0.0

    def test_reserve_run_matches_transfer_run(self):
        ref = BandwidthPipe(4.0, bucket_cycles=16.0)
        fast = BandwidthPipe(4.0, bucket_cycles=16.0)
        expected = ref.transfer_run(3.0, 128, 5)
        finish = fast.reserve_run(3.0, 128, 5)
        floor = 3.0 + 128 / fast.bytes_per_cycle
        assert max(finish, floor) == expected
        assert fast._used == ref._used
