"""Tests for the calibrated analytical tier and its rung-0 screen.

Covers the three contracts the tier rests on:

* the blessed artifact's per-class cycle bands cover every golden pair;
* the conservative-screen property — a screened successive-halving run
  promotes exactly the candidates the unscreened run would, whenever the
  band covers the rung-0 prediction error (here fitted on the spot, so
  the property holds by construction);
* the calibration artifact round-trips through disk and refuses stale
  model revisions, missing files, and unfitted band keys.
"""

import math

import pytest

from repro.core.analytical import predict_suite_score
from repro.core.config import MODEL_REV
from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from repro.experiments.common import ResultCache
from repro.explore.analytical import AnalyticalScreen
from repro.explore.builtin import build_plan, screen_for_plan
from repro.explore.search import (
    default_runner,
    evaluate_rung,
    promotion_count,
    successive_halving,
)
from repro.explore.spec import Axis, SweepSpec
from repro.validate.analytical import (
    BAND_SAFETY,
    Calibration,
    CalibrationError,
    ClassBand,
    golden_prediction_rows,
    load_calibration,
    score_band_key,
)
from repro.workloads.characterize import cached_profile
from repro.workloads.suite import spec_by_name
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name, pattern="streaming", n_ctas=16):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=n_ctas,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_link_plan():
    """A shrunken link_l15-style sweep: link axis on a tiny L1.5+FT base."""
    base = mcm_gpu_with_l15(
        16,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        n_gpms=4,
        sms_per_gpm=2,
        name="tier-base",
    )
    spec = SweepSpec(
        name="tier",
        base=base,
        axes=(Axis("link_bandwidth", (96.0, 192.0, 768.0, 1536.0), label="link"),),
    )
    baseline = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name="tier-baseline")
    rungs = [
        ("rung0", [tiny_workload("tier-a"), tiny_workload("tier-b", "irregular")]),
        ("rung1", [tiny_workload("tier-a", n_ctas=32), tiny_workload("tier-b", "irregular", n_ctas=32)]),
    ]
    return spec, baseline, rungs


def fit_band_calibration(candidates, baseline, workloads, band_key, runner):
    """Truth-fitted Calibration for one rung: covers the centered residuals."""
    profiles = [cached_profile(w) for w in workloads]
    preds = {
        c.name: predict_suite_score(profiles, c.config, baseline) for c in candidates
    }
    sims = {
        item.candidate.name: item.score
        for item in evaluate_rung(candidates, baseline, workloads, 0, runner)
    }
    residuals = [math.log(sims[name] / preds[name]) for name in preds]
    mean = sum(residuals) / len(residuals)
    worst = max(abs(r - mean) for r in residuals)
    band = max(1e-6, worst * BAND_SAFETY)
    return Calibration(
        model_rev=MODEL_REV,
        score_band=band,
        classes={"M-Intensive": ClassBand(cycles_scale=1.0, cycles_band=1.0, pairs=1)},
        score_bands={band_key: band},
    )


class FixedScoreScreen(AnalyticalScreen):
    """Screen with injected scores — isolates the classification math."""

    def __init__(self, calibration, scores, band_key=None):
        super().__init__(
            calibration,
            baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name="fx-base"),
            [tiny_workload("fx")],
            band_key=band_key,
        )
        self._scores = scores

    def score(self, candidate):
        return self._scores[candidate.name]


def named_candidates(scores):
    from repro.explore.spec import Candidate

    base = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name="fx-base")
    return [Candidate(name=name, config=base, assignment={}) for name in scores]


# ----------------------------------------------------------------------
# Prediction vs golden store, under the blessed artifact
# ----------------------------------------------------------------------


class TestBlessedArtifact:
    def test_blessed_calibration_loads_for_current_model_rev(self):
        calibration = load_calibration()
        assert calibration.model_rev == MODEL_REV
        assert calibration.classes

    def test_blessed_bands_cover_every_golden_pair(self):
        calibration = load_calibration()
        rows = golden_prediction_rows(calibration)
        assert rows, "golden store is empty"
        outside = [row["key"] for row in rows if not row["within_band"]]
        assert not outside, f"golden pairs outside blessed bands: {outside}"

    def test_blessed_bands_cover_the_fast_builtin_rungs(self):
        # The router refuses unfitted rungs, so the artifact must carry a
        # band for every built-in sweep's --fast rung 0.
        calibration = load_calibration()
        for key in ("link_l15", "page_place", "gpm_count", "smoke", "wide", "ml"):
            plan = build_plan(key, fast=True)
            band_key = score_band_key(plan.spec.name, plan.rungs[0][0])
            assert band_key in calibration.score_bands, f"missing {band_key}"


# ----------------------------------------------------------------------
# Classification math
# ----------------------------------------------------------------------


class TestClassification:
    def make(self, band, scores):
        calibration = Calibration(
            model_rev=MODEL_REV,
            score_band=band,
            classes={"M-Intensive": ClassBand(1.0, 1.0, 1)},
            score_bands={"fx|rung0": band},
        )
        return FixedScoreScreen(calibration, scores, band_key="fx|rung0")

    def test_clear_separation_decides_everything(self):
        scores = {"hi": 2.0, "mid": 1.0, "lo": 0.25}
        screen = self.make(0.05, scores)
        outcome = screen.classify(named_candidates(scores), keep=1)
        assert outcome.definite_in == ("hi",)
        assert outcome.ambiguous == ()
        assert outcome.screened_out == ("mid", "lo")

    def test_within_band_rivals_stay_ambiguous(self):
        # 2*band gap: log(1.1/1.0) ~ 0.095 < 2*0.05, so hi/mid overlap.
        scores = {"hi": 1.1, "mid": 1.0, "lo": 0.25}
        screen = self.make(0.05, scores)
        outcome = screen.classify(named_candidates(scores), keep=1)
        assert set(outcome.ambiguous) == {"hi", "mid"}
        assert outcome.screened_out == ("lo",)

    def test_huge_band_makes_everything_ambiguous(self):
        scores = {"hi": 2.0, "mid": 1.0, "lo": 0.25}
        screen = self.make(5.0, scores)
        outcome = screen.classify(named_candidates(scores), keep=1)
        assert set(outcome.ambiguous) == set(scores)
        assert outcome.definite_in == ()
        assert outcome.screened_out == ()

    def test_rejects_nonpositive_keep(self):
        screen = self.make(0.05, {"a": 1.0})
        with pytest.raises(ValueError, match="keep"):
            screen.classify(named_candidates({"a": 1.0}), keep=0)

    def test_band_comes_from_the_rung_key(self):
        calibration = Calibration(
            model_rev=MODEL_REV,
            score_band=9.0,
            classes={"M-Intensive": ClassBand(1.0, 1.0, 1)},
            score_bands={"fx|rung0": 0.01},
        )
        screen = FixedScoreScreen(calibration, {"a": 1.0}, band_key="fx|rung0")
        assert screen.band == pytest.approx(0.01)
        # No key -> the artifact's widest band.
        screen = FixedScoreScreen(calibration, {"a": 1.0})
        assert screen.band == pytest.approx(9.0)


# ----------------------------------------------------------------------
# Conservative-screen property on real (shrunken) sweeps
# ----------------------------------------------------------------------


class TestConservativeScreen:
    def check_plan(self, candidates, baseline, rungs, band_key, tmp_path):
        runner = default_runner(cache=ResultCache(tmp_path / "cache"), max_workers=1)
        unscreened = successive_halving(
            candidates, baseline, rungs, keep_fraction=0.5, runner=runner
        )
        calibration = fit_band_calibration(
            candidates, baseline, rungs[0][1], band_key, runner
        )
        screen = AnalyticalScreen(
            calibration, baseline, rungs[0][1], band_key=band_key
        )
        # The eventual winner is never screened out at rung 0.
        outcome = screen.classify(
            candidates, promotion_count(len(candidates), 0.5)
        )
        assert unscreened.best.candidate.name not in outcome.screened_out
        screened = successive_halving(
            candidates, baseline, rungs, keep_fraction=0.5, runner=runner, screen=screen
        )
        assert screened.survivors == unscreened.survivors
        final = len(rungs) - 1
        sim_scores = lambda result: {  # noqa: E731 - tiny helper
            item.candidate.name: item.score
            for item in result.ranking
            if item.rung == final
        }
        assert sim_scores(screened) == sim_scores(unscreened)
        assert screened.rungs[0].pairs <= unscreened.rungs[0].pairs
        assert screened.rungs[0].screen is not None
        assert unscreened.rungs[0].screen is None
        return screened, unscreened

    def test_tiny_link_sweep(self, tmp_path):
        spec, baseline, rungs = tiny_link_plan()
        self.check_plan(spec.candidates(), baseline, rungs, "tier|rung0", tmp_path)

    def test_smoke_grid(self, tmp_path):
        # The real smoke grid and baseline, with a cheaper second rung so
        # the property check stays test-sized.
        plan = build_plan("smoke")
        specs = [spec_by_name(name) for name in ("Stream", "BFS")]
        rungs = [
            ("smoke@0.0625", [SyntheticWorkload(s.scaled_down(0.0625)) for s in specs]),
            ("smoke@0.125", [SyntheticWorkload(s.scaled_down(0.125)) for s in specs]),
        ]
        band_key = score_band_key(plan.spec.name, rungs[0][0])
        self.check_plan(
            plan.spec.candidates(), plan.baseline, rungs, band_key, tmp_path
        )

    def test_huge_band_degrades_to_unscreened(self, tmp_path):
        spec, baseline, rungs = tiny_link_plan()
        candidates = spec.candidates()
        runner = default_runner(cache=ResultCache(tmp_path / "cache"), max_workers=1)
        unscreened = successive_halving(
            candidates, baseline, rungs, keep_fraction=0.5, runner=runner
        )
        calibration = Calibration(
            model_rev=MODEL_REV,
            score_band=10.0,
            classes={"M-Intensive": ClassBand(1.0, 1.0, 1)},
            score_bands={"tier|rung0": 10.0},
        )
        screen = AnalyticalScreen(
            calibration, baseline, rungs[0][1], band_key="tier|rung0"
        )
        screened = successive_halving(
            candidates, baseline, rungs, keep_fraction=0.5, runner=runner, screen=screen
        )
        assert screened.survivors == unscreened.survivors
        # Everything ambiguous -> the full rung simulates, same pair bill.
        assert screened.rungs[0].pairs == unscreened.rungs[0].pairs
        assert screened.rungs[0].screen["ambiguous"] == len(candidates)

    def test_screen_for_plan_binds_the_rung_band_key(self):
        plan = build_plan("smoke")
        calibration = Calibration(
            model_rev=MODEL_REV,
            score_band=0.5,
            classes={"M-Intensive": ClassBand(1.0, 1.0, 1)},
            score_bands={score_band_key("smoke", plan.rungs[0][0]): 0.125},
        )
        screen = screen_for_plan(plan, calibration)
        assert screen.band == pytest.approx(0.125)


# ----------------------------------------------------------------------
# Artifact round-trip and staleness
# ----------------------------------------------------------------------


class TestCalibrationArtifact:
    def sample(self):
        return Calibration(
            model_rev=MODEL_REV,
            score_band=0.21,
            classes={
                "M-Intensive": ClassBand(cycles_scale=1.1, cycles_band=0.3, pairs=8),
                "C-Intensive": ClassBand(cycles_scale=0.9, cycles_band=0.5, pairs=4),
            },
            score_bands={"link_l15|suite@0.0625": 0.01, "smoke|smoke@0.0625": 0.02},
            note="round-trip test",
        )

    def test_round_trip_is_lossless(self, tmp_path):
        calibration = self.sample()
        path = calibration.save(tmp_path / "analytical.json")
        loaded = load_calibration(path)
        assert loaded.to_dict() == calibration.to_dict()
        assert loaded.band_for_sweep("link_l15|suite@0.0625") == pytest.approx(0.01)
        band = loaded.band_for("M-Intensive")
        assert band.covers(100.0, 110.0)
        assert not band.covers(100.0, 200.0)

    def test_round_trip_preserves_classification(self, tmp_path):
        calibration = self.sample()
        loaded = load_calibration(calibration.save(tmp_path / "analytical.json"))
        scores = {"hi": 1.2, "mid": 1.0, "lo": 0.5}
        key = "link_l15|suite@0.0625"
        before = FixedScoreScreen(calibration, scores, band_key=key).classify(
            named_candidates(scores), keep=1
        )
        after = FixedScoreScreen(loaded, scores, band_key=key).classify(
            named_candidates(scores), keep=1
        )
        assert before == after

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(CalibrationError, match="no analytical calibration"):
            load_calibration(tmp_path / "nope.json")

    def test_stale_model_rev_raises(self, tmp_path):
        calibration = self.sample()
        calibration.model_rev = MODEL_REV + 1
        path = calibration.save(tmp_path / "analytical.json")
        with pytest.raises(CalibrationError, match="model rev"):
            load_calibration(path)

    def test_unfitted_band_key_raises(self):
        calibration = self.sample()
        with pytest.raises(CalibrationError, match="no score band"):
            calibration.band_for_sweep("wide|suite@0.25")
