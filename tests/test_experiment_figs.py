"""Unit tests for the figure-experiment modules.

Simulating the full suite is benchmark territory; here the experiment
logic (aggregation, variant selection, report rendering) is tested against
stubbed suite results, so these tests run in milliseconds.
"""

import pytest

from repro.experiments import (
    fig2_scaling,
    fig4_bandwidth,
    fig6_l15,
    fig13_ft,
    fig15_scurve,
    fig16_breakdown,
    fig17_multigpu,
)
from repro.experiments import traffic_common
from repro.memory.cache import CacheStats
from repro.sim.result import SimResult
from repro.workloads.suite import all_specs


def stub_result(name, cycles, link_bytes=10_000):
    return SimResult(
        workload_name=name,
        system_name="stub",
        cycles=cycles,
        kernels=1,
        ctas=1,
        records=1,
        loads=1,
        stores=0,
        remote_loads=0,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=link_bytes,
        page_local=0,
        page_remote=0,
    )


def stub_suite(cycles_by_config):
    """Build a run_suites replacement keyed by config name."""

    def fake_run_suites(configs, workloads=None, cache=None, max_workers=None, progress=None):
        out = []
        for config in configs:
            factor = cycles_by_config(config)
            out.append(
                {
                    spec.name: stub_result(
                        spec.name, 1000.0 * factor, link_bytes=int(10_000 * factor)
                    )
                    for spec in all_specs()
                }
            )
        return out

    return fake_run_suites


class TestFig2Logic:
    def test_requires_reference_point(self):
        with pytest.raises(ValueError, match="32-SM reference"):
            fig2_scaling.run_fig2(sm_counts=(64, 128))

    def test_scaling_points(self, monkeypatch):
        def cycles(config):
            return 32.0 / config.total_sms  # perfect linear scaling

        monkeypatch.setattr(fig2_scaling, "run_suites", stub_suite(cycles))
        points = fig2_scaling.run_fig2(sm_counts=(32, 64, 128))
        assert points[0].high_parallelism == pytest.approx(1.0)
        assert points[2].high_parallelism == pytest.approx(4.0)
        assert points[2].efficiency == pytest.approx(1.0)
        assert "Figure 2" in fig2_scaling.report(points)


class TestFig4Logic:
    def test_relative_to_first_setting(self, monkeypatch):
        def cycles(config):
            return 6144.0 / config.link_bandwidth  # slower at lower settings

        monkeypatch.setattr(fig4_bandwidth, "run_suites", stub_suite(cycles))
        points = fig4_bandwidth.run_fig4((6144.0, 768.0))
        assert points[0].m_intensive == pytest.approx(1.0)
        assert points[1].m_intensive == pytest.approx(768.0 / 6144.0)
        assert "Figure 4" in fig4_bandwidth.report(points)

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError, match="at least one"):
            fig4_bandwidth.run_fig4(())


class TestFig6Logic:
    def test_best_iso_transistor_prefers_higher_m_geomean(self, monkeypatch):
        def cycles(config):
            if config.total_l15_bytes == 0:
                return 1.0  # baseline
            # 16 MB variants twice as fast as 8 MB variants.
            return 0.5 if config.total_l15_bytes > 300_000 else 0.9

        monkeypatch.setattr(fig6_l15, "run_suites", stub_suite(cycles))
        variants = fig6_l15.run_fig6(((8, True), (16, True)))
        best = fig6_l15.best_iso_transistor(variants)
        assert best.capacity_mb == 16
        assert "Figure 6" in fig6_l15.report(variants)

    def test_best_iso_transistor_rejects_empty(self):
        with pytest.raises(ValueError, match="no iso-transistor"):
            fig6_l15.best_iso_transistor([])


class TestFig13Logic:
    def test_two_variants(self, monkeypatch):
        monkeypatch.setattr(fig13_ft, "run_suites", stub_suite(lambda config: 1.0))
        variants = fig13_ft.run_fig13()
        assert set(variants) == {8, 16}
        assert "Figure 13" in fig13_ft.report(variants)


class TestTrafficComparisonLogic:
    def test_reduction_factor_first_vs_last(self):
        first = {spec.name: stub_result(spec.name, 1000.0, 10_000) for spec in all_specs()}
        last = {spec.name: stub_result(spec.name, 1000.0, 2_000) for spec in all_specs()}
        comparison = traffic_common.build_comparison("T", [("a", first), ("b", last)])
        assert comparison.reduction_factor == pytest.approx(5.0)
        assert "5.0" in traffic_common.report(comparison)

    def test_needs_two_configs(self):
        with pytest.raises(ValueError, match="at least two"):
            traffic_common.build_comparison("T", [("only", {})])


class TestFig15Logic:
    def test_counts_and_extremes(self):
        per_workload = {f"w{i}": 1.0 + i / 10.0 for i in range(10)}
        per_workload["loser"] = 0.5
        scurve = fig15_scurve.SCurve(per_workload=per_workload)
        assert scurve.degraded == 1
        assert scurve.improved == 9  # w0 is exactly 1.0
        assert scurve.curve[0] == 0.5
        extremes = scurve.extremes(2)
        assert "loser" in extremes


class TestFig16Logic:
    def test_gap_to_monolithic(self):
        breakdown = fig16_breakdown.Breakdown(
            speedups={"optimized": 1.2, "monolithic-256": 1.32}
        )
        assert breakdown.gap_to_monolithic() == pytest.approx(1.1)


class TestFig17Logic:
    def test_headline_ratio(self):
        comparison = fig17_multigpu.MultiGPUComparison(
            speedups={"multi-gpu-optimized": 1.25, "mcm-optimized": 1.52}
        )
        assert comparison.mcm_over_optimized_multi_gpu() == pytest.approx(1.216)
