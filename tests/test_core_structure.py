"""Unit tests for the structural model: SM, GPM, GPUSystem."""

import pytest

from repro.core.gpu import build_system
from repro.core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
)


class TestSM:
    def test_slot_accounting(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=2))
        sm = system.gpms[0].sms[0]
        capacity = sm.config.max_resident_ctas
        for _ in range(capacity):
            sm.occupy_slot()
        assert sm.free_cta_slots == 0
        with pytest.raises(RuntimeError, match="no free CTA slot"):
            sm.occupy_slot()
        sm.release_slot()
        assert sm.free_cta_slots == 1

    def test_release_beyond_capacity_rejected(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=2))
        sm = system.gpms[0].sms[0]
        with pytest.raises(RuntimeError, match="more slots"):
            sm.release_slot()

    def test_charge_issue_advances_clock(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=2))
        sm = system.gpms[0].sms[0]
        sm.charge_issue(10.0, 8.0)
        assert sm.clock == pytest.approx(10.0 + 8.0 / sm.issue_throughput)

    def test_reset(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=2))
        sm = system.gpms[0].sms[0]
        sm.occupy_slot()
        sm.charge_issue(0.0, 100.0)
        sm.l1.access(5)
        sm.reset()
        assert sm.clock == 0.0
        assert sm.free_cta_slots == sm.config.max_resident_ctas
        assert sm.l1.stats.accesses == 0
        assert not sm.l1.probe(5)


class TestGPM:
    def test_structure(self):
        system = build_system(mcm_gpu_with_l15(16))
        gpm = system.gpms[0]
        assert len(gpm.sms) == 64
        assert gpm.has_l15
        assert gpm.l2.enabled
        assert gpm.dram.pipe.bytes_per_cycle == 768.0

    def test_no_l15_baseline(self):
        system = build_system(baseline_mcm_gpu())
        assert not system.gpms[0].has_l15
        assert not system.gpms[0].l15_caches_local

    def test_kernel_boundary_flush_clears_l1_and_l15_not_l2(self):
        system = build_system(mcm_gpu_with_l15(16))
        gpm = system.gpms[0]
        gpm.sms[0].l1.access(1)
        gpm.l15.access(2)
        gpm.l2.access(3)
        gpm.kernel_boundary_flush()
        assert not gpm.sms[0].l1.probe(1)
        assert not gpm.l15.probe(2)
        assert gpm.l2.probe(3)  # memory-side L2 is not flushed

    def test_aggregate_l1_stats(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=4))
        gpm = system.gpms[0]
        gpm.sms[0].l1.access(1)
        gpm.sms[1].l1.access(1)
        total = gpm.aggregate_l1_stats()
        assert total.misses == 2


class TestGPUSystem:
    def test_sm_ids_globally_unique(self):
        system = build_system(baseline_mcm_gpu())
        ids = [sm.sm_id for sm in system.all_sms()]
        assert ids == list(range(256))

    def test_interleaved_order_alternates_gpms(self):
        system = build_system(baseline_mcm_gpu())
        order = system.sms_interleaved()
        assert [sm.gpm_id for sm in order[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert len(order) == 256

    def test_monolithic_slices_behind_fast_fabric(self):
        system = build_system(monolithic_gpu(128))
        assert system.n_gpms == 4
        assert system.total_sms == 128
        # Fabric links are effectively unlimited and cheap.
        assert system.ring.links[0].latency_cycles < 10
        assert system.ring.links[0].request_pipe.bytes_per_cycle > 10_000

    def test_multi_gpu_structure(self):
        system = build_system(multi_gpu())
        assert system.n_gpms == 2
        assert system.total_sms == 256
        assert system.ring.hop_latency_cycles == 320.0

    def test_reset_restores_pristine_state(self):
        system = build_system(baseline_mcm_gpu(n_gpms=2, sms_per_gpm=2))
        sm = system.gpms[0].sms[0]
        system.memsys.load(0.0, sm, 123)
        system.memsys.store(0.0, sm, 77)
        system.reset()
        assert system.memsys.loads == 0
        assert system.ring.total_link_bytes == 0
        assert system.page_table.local_resolutions == 0
        assert system.gpms[0].dram.total_bytes == 0
        assert system.gpms[0].xbar.total_requests == 0
