"""Tests for the design-space exploration subsystem (repro.explore)."""

import json

import pytest

from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from repro.experiments.common import ResultCache
from repro.explore import (
    Axis,
    Candidate,
    Objective,
    SweepSpec,
    bisect_crossover,
    config_get,
    config_replace,
    default_runner,
    dominates,
    pareto_front,
    pareto_indices,
    promotion_count,
    select_survivors,
    successive_halving,
)
from repro.explore.builtin import BUILTIN_SWEEPS, build_plan, run_sweep
from repro.explore.report import render_text, write_artifacts
from repro.explore.search import ScoredCandidate
from repro.parallel.metrics import GLOBAL_METRICS
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name="xp-wl", n_ctas=16):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern="streaming",
            n_ctas=n_ctas,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_base(name="xp-base"):
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name=name)


# ----------------------------------------------------------------------
# spec: dot-paths and deterministic enumeration
# ----------------------------------------------------------------------


class TestConfigPaths:
    def test_get_and_replace_top_level(self):
        config = tiny_base()
        assert config_get(config, "link_bandwidth") == 768.0
        swept = config_replace(config, "link_bandwidth", 384.0)
        assert swept.link_bandwidth == 384.0
        assert config.link_bandwidth == 768.0  # original untouched

    def test_replace_nested_path(self):
        config = mcm_gpu_with_l15(16, remote_only=True)
        swept = config_replace(config, "gpm.l15.size_bytes", 4096)
        assert swept.gpm.l15.size_bytes == 4096
        assert config.gpm.l15.size_bytes != 4096

    def test_replace_through_none_l15_raises(self):
        config = tiny_base()  # baseline has no L1.5
        with pytest.raises(ValueError, match="None"):
            config_replace(config, "gpm.l15.size_bytes", 4096)

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="no field"):
            config_replace(tiny_base(), "gpm.no_such_knob", 1)
        with pytest.raises(ValueError, match="no field"):
            config_get(tiny_base(), "gpm.no_such_knob")


class TestSweepSpec:
    def axes(self):
        return (
            Axis("link_bandwidth", (384.0, 768.0)),
            Axis("page_bytes", (1024, 2048, 4096), label="pg"),
        )

    def test_grid_expansion_deterministic_and_collision_free(self):
        spec = SweepSpec(name="t", base=tiny_base(), axes=self.axes())
        first = spec.candidates()
        second = spec.candidates()
        assert [c.name for c in first] == [c.name for c in second]
        assert [c.config for c in first] == [c.config for c in second]
        assert len(first) == 6
        names = [c.name for c in first]
        assert len(set(names)) == len(names)
        digests = {c.config.digest() for c in first}
        assert len(digests) == len(first)

    def test_grid_row_major_order(self):
        spec = SweepSpec(name="t", base=tiny_base(), axes=self.axes())
        assignments = [tuple(c.assignment.values()) for c in spec.candidates()]
        assert assignments == [
            (384.0, 1024), (384.0, 2048), (384.0, 4096),
            (768.0, 1024), (768.0, 2048), (768.0, 4096),
        ]

    def test_candidates_materialize_assignment(self):
        spec = SweepSpec(name="t", base=tiny_base(), axes=self.axes())
        for candidate in spec.candidates():
            assert candidate.config.link_bandwidth == candidate.assignment["link_bandwidth"]
            assert candidate.config.page_bytes == candidate.assignment["page_bytes"]
            assert candidate.config.name == candidate.name

    def test_random_strategy_is_seeded_and_collision_free(self):
        spec = SweepSpec(
            name="t", base=tiny_base(), axes=self.axes(), strategy="random",
            samples=4, seed=7,
        )
        first = [c.name for c in spec.candidates()]
        assert first == [c.name for c in spec.candidates()]
        assert len(set(first)) == 4
        other_seed = SweepSpec(
            name="t", base=tiny_base(), axes=self.axes(), strategy="random",
            samples=4, seed=8,
        )
        grid = {c.name for c in SweepSpec(name="t", base=tiny_base(), axes=self.axes()).candidates()}
        assert set(first) <= grid
        assert {c.name for c in other_seed.candidates()} <= grid

    def test_random_samples_capped_at_grid_size(self):
        spec = SweepSpec(
            name="t", base=tiny_base(), axes=self.axes(), strategy="random",
            samples=99, seed=0,
        )
        assert len(spec.candidates()) == spec.grid_size

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            SweepSpec(name="t", base=tiny_base(), axes=self.axes(), strategy="sobol")
        with pytest.raises(ValueError, match="no axes"):
            SweepSpec(name="t", base=tiny_base(), axes=())
        with pytest.raises(ValueError, match="repeats"):
            SweepSpec(
                name="t", base=tiny_base(),
                axes=(Axis("page_bytes", (1024,)), Axis("page_bytes", (2048,))),
            )
        with pytest.raises(ValueError, match="samples"):
            SweepSpec(name="t", base=tiny_base(), axes=self.axes(), strategy="random")
        # Axis paths are checked against the base at construction time.
        with pytest.raises(ValueError, match="None"):
            SweepSpec(
                name="t", base=tiny_base(),
                axes=(Axis("gpm.l15.size_bytes", (4096,)),),
            )

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="no values"):
            Axis("page_bytes", ())
        with pytest.raises(ValueError, match="duplicate"):
            Axis("page_bytes", (1024, 1024))
        assert Axis("gpm.l15.size_bytes", (1,)).label == "size_bytes"


# ----------------------------------------------------------------------
# pareto: hand-built dominated / non-dominated sets
# ----------------------------------------------------------------------


class TestPareto:
    OBJECTIVES = (
        Objective("speed", maximize=True),
        Objective("cost", maximize=False),
    )

    def test_dominates(self):
        a = {"speed": 2.0, "cost": 1.0}
        b = {"speed": 1.0, "cost": 2.0}
        assert dominates(a, b, self.OBJECTIVES)
        assert not dominates(b, a, self.OBJECTIVES)
        # Equal vectors do not dominate each other.
        assert not dominates(a, dict(a), self.OBJECTIVES)

    def test_hand_built_frontier(self):
        points = [
            {"speed": 1.0, "cost": 1.0},   # frontier (cheapest)
            {"speed": 2.0, "cost": 2.0},   # frontier (middle)
            {"speed": 1.5, "cost": 3.0},   # dominated by the middle point
            {"speed": 3.0, "cost": 4.0},   # frontier (fastest)
            {"speed": 0.5, "cost": 1.0},   # dominated by the cheapest
        ]
        assert pareto_indices(points, self.OBJECTIVES) == [0, 1, 3]

    def test_duplicates_all_kept(self):
        points = [{"speed": 1.0, "cost": 1.0}, {"speed": 1.0, "cost": 1.0}]
        assert pareto_indices(points, self.OBJECTIVES) == [0, 1]

    def test_single_objective_is_argmax(self):
        points = [{"speed": 1.0}, {"speed": 3.0}, {"speed": 2.0}]
        assert pareto_indices(points, (Objective("speed", maximize=True),)) == [1]

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            pareto_indices([{"speed": 1.0}], ())

    def test_pareto_front_sorted_by_score(self):
        def scored(name, score, cost):
            candidate = Candidate(name=name, config=tiny_base(name), assignment={})
            return ScoredCandidate(
                candidate=candidate, score=score,
                objectives={"speed": score, "cost": cost}, rung=0,
            )

        items = [scored("slow", 1.0, 1.0), scored("fast", 3.0, 4.0), scored("bad", 0.9, 2.0)]
        front = pareto_front(items, self.OBJECTIVES)
        assert [item.candidate.name for item in front] == ["fast", "slow"]


# ----------------------------------------------------------------------
# search: promotion math and the full halving driver
# ----------------------------------------------------------------------


def fake_scored(name, score, rung=0):
    candidate = Candidate(name=name, config=tiny_base(name), assignment={})
    return ScoredCandidate(candidate=candidate, score=score, objectives={}, rung=rung)


class TestPromotion:
    def test_promotion_count(self):
        assert promotion_count(8, 0.5) == 4
        assert promotion_count(5, 0.5) == 3   # ceil
        assert promotion_count(3, 0.25) == 1
        assert promotion_count(1, 0.1) == 1   # never below one
        assert promotion_count(0, 0.5) == 0
        assert promotion_count(4, 1.0) == 4
        with pytest.raises(ValueError):
            promotion_count(4, 0.0)
        with pytest.raises(ValueError):
            promotion_count(4, 1.5)

    def test_select_survivors_exact_fraction_and_ties(self):
        scored = [
            fake_scored("a", 1.0),
            fake_scored("b", 3.0),
            fake_scored("c", 2.0),
            fake_scored("d", 2.0),
        ]
        top = select_survivors(scored, 0.5)
        assert [item.candidate.name for item in top] == ["b", "c"]  # tie -> name order
        assert len(select_survivors(scored, 0.25)) == 1
        assert len(select_survivors(scored, 1.0)) == 4


class TestSuccessiveHalving:
    def candidates(self):
        spec = SweepSpec(
            name="hs",
            base=tiny_base("hs-base"),
            axes=(Axis("link_bandwidth", (192.0, 384.0, 768.0, 1536.0), label="link"),),
        )
        return spec.candidates()

    def rungs(self):
        return [
            ("micro", [tiny_workload("hs-micro", n_ctas=8)]),
            ("small", [tiny_workload("hs-small", n_ctas=16)]),
        ]

    def test_promotes_configured_fraction(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = default_runner(cache=cache, max_workers=1)
        result = successive_halving(
            self.candidates(), tiny_base("hs-baseline"), self.rungs(),
            keep_fraction=0.5, runner=runner,
        )
        assert result.rungs[0].candidates == 4
        assert result.rungs[0].promoted == 2
        assert result.rungs[1].candidates == 2
        assert len(result.survivors) == 2
        assert len(result.ranking) == 4
        # Survivors carry final-rung scores; everyone appears exactly once.
        names = [item.candidate.name for item in result.ranking]
        assert len(set(names)) == 4
        assert all(item.rung == 1 for item in result.ranking[:2])
        assert all(item.rung == 0 for item in result.ranking[2:])
        # More link bandwidth never hurts, so the widest links win.
        assert "1536" in result.best.candidate.name

    def test_warm_rerun_never_resimulates(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = default_runner(cache=cache, max_workers=1)
        first = successive_halving(
            self.candidates(), tiny_base("hs-baseline"), self.rungs(),
            keep_fraction=0.5, runner=runner,
        )
        assert sum(rung.simulated for rung in first.rungs) > 0

        warm_cache = ResultCache(tmp_path)
        warm = successive_halving(
            self.candidates(), tiny_base("hs-baseline"), self.rungs(),
            keep_fraction=0.5, runner=default_runner(cache=warm_cache, max_workers=1),
        )
        assert sum(rung.simulated for rung in warm.rungs) == 0
        assert all(rung.cached == rung.pairs for rung in warm.rungs)
        assert [item.candidate.name for item in warm.ranking] == [
            item.candidate.name for item in first.ranking
        ]
        assert [item.score for item in warm.ranking] == [
            item.score for item in first.ranking
        ]

    def test_needs_at_least_one_rung(self):
        with pytest.raises(ValueError):
            successive_halving(self.candidates(), tiny_base(), [], runner=lambda c, w: [])

    def test_interleaved_suite_runs_do_not_distort_rung_accounting(self, tmp_path):
        # Regression: rung deltas were read off the process-global
        # metrics, so an unrelated suite run finishing mid-sweep inflated
        # ``simulated`` — and a cache-heavy one drove the delta negative,
        # which a silent max(0, ...) clamp then hid as zero.
        cache = ResultCache(tmp_path)
        inner = default_runner(cache=cache, max_workers=1)

        def noisy(configs, workloads):
            results = inner(configs, workloads)
            # An unrelated experiment completing elsewhere in the process:
            # 10 executed pairs, 200 cache-served pairs.
            GLOBAL_METRICS.record_batch(["elsewhere"], 210, 200, 0.0, 1)
            return results

        noisy.metrics = inner.metrics
        result = successive_halving(
            self.candidates(), tiny_base("hs-baseline"), self.rungs(),
            keep_fraction=0.5, runner=noisy,
        )
        # Cold cache: every rung pair simulated, none cached, no clamping.
        assert [rung.simulated for rung in result.rungs] == [
            rung.pairs for rung in result.rungs
        ]
        assert all(rung.cached == 0 for rung in result.rungs)


# ----------------------------------------------------------------------
# crossover: bisection on synthetic monotone objectives
# ----------------------------------------------------------------------


class TestBisectCrossover:
    def test_converges_on_monotone_objective(self):
        result = bisect_crossover(lambda x: x - 3.7, 0.0, 10.0, tolerance=0.01)
        assert result.bracketed
        assert result.status == "bracketed"
        assert result.estimate == pytest.approx(3.7, abs=0.01)
        # The estimate always sits on the winning side of the bracket.
        assert result.estimate - 3.7 >= -1e-9

    def test_already_winning_at_lo(self):
        # Regression: a positive advantage at ``lo`` used to short-circuit
        # into ``estimate == lo`` — reporting the arbitrary bracket
        # boundary as if it were the measured crossover point.  Same-sign
        # endpoints mean there is no crossover in range; both endpoint
        # advantages must be probed and reported instead.
        result = bisect_crossover(lambda x: x + 1.0, 0.0, 10.0)
        assert not result.bracketed
        assert result.status == "always_ahead"
        assert result.estimate is None
        assert result.evaluations == 2
        assert result.endpoint_advantages == (1.0, 11.0)

    def test_never_winning(self):
        result = bisect_crossover(lambda x: x - 99.0, 0.0, 10.0)
        assert not result.bracketed
        assert result.status == "never_ahead"
        assert result.estimate is None
        assert result.evaluations == 2
        assert result.endpoint_advantages == (-99.0, -89.0)

    def test_decreasing_advantage_reported_not_bisected(self):
        result = bisect_crossover(lambda x: 5.0 - x, 0.0, 10.0)
        assert not result.bracketed
        assert result.status == "non_monotone"
        assert result.estimate is None
        assert result.evaluations == 2

    def test_deterministic_probes(self):
        a = bisect_crossover(lambda x: x - 3.7, 0.0, 10.0, tolerance=0.5)
        b = bisect_crossover(lambda x: x - 3.7, 0.0, 10.0, tolerance=0.5)
        assert a.samples == b.samples

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            bisect_crossover(lambda x: x, 5.0, 5.0)
        with pytest.raises(ValueError):
            bisect_crossover(lambda x: x, 0.0, 1.0, tolerance=0.0)


# ----------------------------------------------------------------------
# builtin plans and artifact writing (smoke-sized)
# ----------------------------------------------------------------------


class TestBuiltinSweeps:
    def test_registry_builds_plans(self):
        for key in BUILTIN_SWEEPS:
            plan = build_plan(key, fast=True)
            assert plan.spec.candidates()
            assert plan.rungs
            assert plan.probe_workloads

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            build_plan("nope")

    def test_smoke_sweep_end_to_end(self, tmp_path):
        plan = build_plan("smoke")
        # Shrink further for test runtime: single rung, micro workloads.
        plan.rungs = [("micro", [tiny_workload("bp-micro", n_ctas=8)])]
        plan.probe_workloads = list(plan.rungs[0][1])
        plan.crossover = None
        cache = ResultCache(tmp_path / "cache")
        report = run_sweep(plan, runner=default_runner(cache=cache, max_workers=1))
        assert report.frontier, "smoke sweep must yield a non-empty frontier"
        assert report.sensitivity
        text = render_text(report)
        assert "Pareto frontier" in text

        paths = write_artifacts(report, tmp_path / "out", cache=cache)
        data = json.loads(paths["report.json"].read_text())
        assert data["pareto_frontier"]
        assert data["ranking"]
        assert len(data["rungs"]) == 1
        run_data = json.loads(paths["run.json"].read_text())
        assert run_data["cache"]["entries"] > 0
        # The deterministic artifact must not leak runtime quantities.
        assert "wall_seconds" not in json.dumps(data)
