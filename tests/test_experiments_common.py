"""Unit tests for the experiment runner and result cache."""

import json

import pytest

from repro.core.config import MODEL_REV
from repro.core.presets import baseline_mcm_gpu
from repro.experiments import common
from repro.experiments.common import (
    ResultCache,
    default_cache,
    filter_names,
    names_in_category,
    run_one,
    run_suite,
)
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name="cache-wl"):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern="streaming",
            n_ctas=16,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_config():
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        workload = tiny_workload()
        config = tiny_config()
        first = run_one(workload, config, cache)
        assert cache.misses == 1
        second = run_one(workload, config, cache)
        assert cache.hits == 1
        assert second == first

    def test_persists_across_instances(self, tmp_path):
        workload = tiny_workload()
        config = tiny_config()
        run_one(workload, config, ResultCache(tmp_path))
        fresh = ResultCache(tmp_path)
        cached = fresh.get(workload.digest(), config.digest())
        assert cached is not None
        assert cached.workload_name == "cache-wl"

    def test_distinguishes_configs(self, tmp_path):
        cache = ResultCache(tmp_path)
        workload = tiny_workload()
        run_one(workload, tiny_config(), cache)
        other = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, link_bandwidth=384.0)
        assert cache.get(workload.digest(), other.digest()) is None

    def test_tolerates_corrupt_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_one(tiny_workload(), tiny_config(), cache)
        with open(cache.path, "a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"unrelated": 1}) + "\n")
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 1

    def test_no_cache_mode(self):
        result = run_one(tiny_workload(), tiny_config(), cache=None)
        assert result.ctas == 16

    def test_get_counts_misses_without_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope", "nada") is None
        assert cache.get("still", "nope") is None
        assert cache.misses == 2
        assert cache.hits == 0

    def test_put_does_not_count_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_one(tiny_workload(), tiny_config(), cache=None)
        cache.put(result)
        assert cache.misses == 0

    def test_merges_shard_files(self, tmp_path):
        workload = tiny_workload("shard-wl")
        config = tiny_config()
        result = run_one(workload, config, cache=None)
        ResultCache(tmp_path, shard="w123").put(result)
        merged = ResultCache(tmp_path)
        assert merged.get(workload.digest(), config.digest()) is not None

    def test_duplicate_keys_last_wins(self, tmp_path):
        workload = tiny_workload("dup-wl")
        config = tiny_config()
        result = run_one(workload, config, cache=None)
        cache = ResultCache(tmp_path)
        cache.put(result)
        cache.put(result)
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 1


def _plant_stale_entry(cache, result, rev):
    """Append a cache line whose system digest claims model revision ``rev``."""
    line = json.dumps(
        {"key": f"{result.workload_digest}##r{rev}|stale-digest", "result": result.to_dict()}
    )
    with open(cache.path, "a") as handle:
        handle.write(line + "\n")


class TestCacheStatsAndPrune:
    def test_stats_empty_cache(self, tmp_path):
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 0
        assert stats.bytes_on_disk == 0
        assert stats.stale_entries == 0
        assert stats.entries_by_rev == {}

    def test_stats_counts_current_and_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_one(tiny_workload(), tiny_config(), cache)
        _plant_stale_entry(cache, result, rev=1)
        _plant_stale_entry(cache, result, rev=2)
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 3
        assert stats.stale_entries == 2
        assert stats.bytes_on_disk == cache.path.stat().st_size
        assert stats.entries_by_rev[MODEL_REV] == 1
        assert stats.entries_by_rev[1] == 1
        assert stats.entries_by_rev[2] == 1

    def test_stats_unparseable_key_counts_as_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_one(tiny_workload(), tiny_config(), cache)
        line = json.dumps({"key": "weird##no-rev-prefix", "result": result.to_dict()})
        with open(cache.path, "a") as handle:
            handle.write(line + "\n")
        stats = ResultCache(tmp_path).stats()
        assert stats.stale_entries == 1
        assert stats.entries_by_rev[-1] == 1

    def test_stats_sums_every_shard(self, tmp_path):
        result = run_one(tiny_workload("shard-a"), tiny_config(), cache=None)
        ResultCache(tmp_path, shard="w0").put(result)
        other = run_one(tiny_workload("shard-b"), tiny_config(), cache=None)
        ResultCache(tmp_path).put(other)
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 2
        expected = sum(path.stat().st_size for path in tmp_path.glob("results*.jsonl"))
        assert stats.bytes_on_disk == expected

    def test_prune_drops_stale_and_compacts_shards(self, tmp_path):
        shard = ResultCache(tmp_path, shard="w9")
        shard_result = run_one(tiny_workload("prune-shard"), tiny_config(), cache=None)
        shard.put(shard_result)
        cache = ResultCache(tmp_path)
        result = run_one(tiny_workload("prune-main"), tiny_config(), cache)
        _plant_stale_entry(cache, result, rev=1)

        worker = ResultCache(tmp_path)
        assert len(worker) == 3
        dropped = worker.prune()
        assert dropped == 1
        # Stale entry gone, current entries (from every shard) survive.
        assert len(worker) == 2
        assert worker.stats().stale_entries == 0
        # Shards were folded into the main file.
        assert [path.name for path in tmp_path.glob("results*.jsonl")] == ["results.jsonl"]
        fresh = ResultCache(tmp_path)
        assert fresh.get(result.workload_digest, result.system_digest) is not None
        assert fresh.get(shard_result.workload_digest, shard_result.system_digest) is not None

    def test_prune_noop_when_all_current(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_one(tiny_workload(), tiny_config(), cache)
        assert cache.prune() == 0
        assert len(ResultCache(tmp_path)) == 1


class TestDefaultCacheResolution:
    def test_no_cache_env_after_import(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert default_cache() is None

    def test_cache_dir_env_change_rebuilds(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.directory == tmp_path

    def test_monkeypatched_default_cache_respected(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        default_cache()  # sync the env snapshot
        replacement = ResultCache(tmp_path / "patched")
        monkeypatch.setattr(common, "DEFAULT_CACHE", replacement)
        assert default_cache() is replacement

    def test_run_one_honors_env_flip(self, tmp_path, monkeypatch):
        # Enabling REPRO_NO_CACHE after import must stop run_one from
        # touching the default cache (the old def-time default could not).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_one(tiny_workload("env-wl"), tiny_config())
        assert not (tmp_path / "results.jsonl").exists()


class TestRunSuite:
    def test_run_suite_with_custom_workloads(self, tmp_path):
        cache = ResultCache(tmp_path)
        workloads = [tiny_workload("w1"), tiny_workload("w2")]
        results = run_suite(tiny_config(), workloads, cache)
        assert set(results) == {"w1", "w2"}
        # Second call is fully cached.
        again = run_suite(tiny_config(), workloads, cache)
        assert cache.hits == 2
        assert again["w1"] == results["w1"]


class TestHelpers:
    def test_names_in_category_counts(self):
        assert len(names_in_category(Category.M_INTENSIVE)) == 17
        assert len(names_in_category(Category.C_INTENSIVE)) == 16
        assert len(names_in_category(Category.LIMITED_PARALLELISM)) == 15

    def test_filter_names(self):
        results = {"a": 1, "b": 2, "c": 3}
        assert filter_names(results, ["c", "a", "zzz"]) == {"c": 3, "a": 1}
