"""Unit and property tests for CTA schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu
from repro.sched.centralized import CentralizedScheduler
from repro.sched.distributed import DistributedScheduler, make_scheduler


def small_system(n_gpms=4, sms_per_gpm=4):
    return build_system(baseline_mcm_gpu(n_gpms=n_gpms, sms_per_gpm=sms_per_gpm))


class TestCentralized:
    def test_dispatches_in_index_order(self):
        system = small_system()
        sched = CentralizedScheduler(system)
        sched.start_kernel(10)
        sms = system.all_sms()
        order = [sched.next_cta(sms[i % len(sms)]) for i in range(10)]
        assert order == list(range(10))
        assert sched.next_cta(sms[0]) is None
        assert sched.exhausted

    def test_initial_fill_interleaves_gpms(self):
        """Figure 8(a): consecutive first-wave CTAs land on different GPMs."""
        system = small_system()
        sched = CentralizedScheduler(system)
        order = sched.initial_fill_order()
        gpm_sequence = [sm.gpm_id for sm in order[:4]]
        assert gpm_sequence == [0, 1, 2, 3]

    def test_rejects_empty_kernel(self):
        sched = CentralizedScheduler(small_system())
        with pytest.raises(ValueError, match="n_ctas"):
            sched.start_kernel(0)


class TestDistributed:
    def test_contiguous_batches_per_gpm(self):
        """Figure 8(b): each GPM owns one contiguous CTA index range."""
        system = small_system()
        sched = DistributedScheduler(system)
        sched.start_kernel(16)
        assert list(sched.batch_bounds(0)) == [0, 1, 2, 3]
        assert list(sched.batch_bounds(3)) == [12, 13, 14, 15]

    def test_uneven_split_spreads_remainder(self):
        system = small_system()
        sched = DistributedScheduler(system)
        sched.start_kernel(10)
        sizes = [len(sched.batch_bounds(g)) for g in range(4)]
        assert sorted(sizes) == [2, 2, 3, 3]
        assert sum(sizes) == 10

    def test_sm_draws_from_its_gpm_batch(self):
        system = small_system()
        sched = DistributedScheduler(system)
        sched.start_kernel(16)
        sm_gpm2 = system.gpms[2].sms[0]
        cta = sched.next_cta(sm_gpm2)
        assert cta in sched.batch_bounds(2)

    def test_no_stealing_returns_none_when_batch_empty(self):
        system = small_system()
        sched = DistributedScheduler(system)
        sched.start_kernel(4)  # one CTA per GPM
        sm = system.gpms[1].sms[0]
        assert sched.next_cta(sm) is not None
        assert sched.next_cta(sm) is None  # batch 1 exhausted; no stealing
        assert not sched.exhausted  # other batches still hold CTAs

    def test_binding_is_stable_across_kernels(self):
        """Figure 12: CTA index -> GPM binding repeats on re-launch."""
        system = small_system()
        sched = DistributedScheduler(system)
        sched.start_kernel(16)
        first = {cta: sched.gpm_of_cta(cta) for cta in range(16)}
        sched.start_kernel(16)
        second = {cta: sched.gpm_of_cta(cta) for cta in range(16)}
        assert first == second

    def test_gpm_of_cta_out_of_range(self):
        sched = DistributedScheduler(small_system())
        sched.start_kernel(8)
        with pytest.raises(ValueError, match="out of range"):
            sched.gpm_of_cta(8)


class TestFactory:
    def test_make_scheduler(self):
        system = small_system()
        assert isinstance(make_scheduler("centralized", system), CentralizedScheduler)
        assert isinstance(make_scheduler("distributed", system), DistributedScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("magic", small_system())


@settings(max_examples=30, deadline=None)
@given(n_ctas=st.integers(min_value=1, max_value=200))
def test_distributed_covers_every_cta_exactly_once(n_ctas):
    """Property: the batches partition [0, n_ctas)."""
    system = small_system()
    sched = DistributedScheduler(system)
    sched.start_kernel(n_ctas)
    seen = []
    for gpm_id in range(4):
        seen.extend(sched.batch_bounds(gpm_id))
    assert sorted(seen) == list(range(n_ctas))


@settings(max_examples=30, deadline=None)
@given(n_ctas=st.integers(min_value=1, max_value=100))
def test_both_schedulers_dispatch_all_ctas(n_ctas):
    """Property: draining either scheduler yields each CTA exactly once."""
    system = small_system()
    for name in ("centralized", "distributed"):
        sched = make_scheduler(name, system)
        sched.start_kernel(n_ctas)
        dispatched = []
        for _ in range(n_ctas * 4 + 8):
            for sm in system.all_sms():
                cta = sched.next_cta(sm)
                if cta is not None:
                    dispatched.append(cta)
            if sched.exhausted:
                break
        assert sorted(dispatched) == list(range(n_ctas))
