"""Tests for the parallel suite runner and the concurrent-safe cache."""

import json
import multiprocessing
import os

import pytest

from repro.core.presets import baseline_mcm_gpu
from repro.experiments.common import ResultCache, _run_suite_serial, run_suites
from repro.memory.cache import CacheStats
from repro.parallel import runner
from repro.parallel.metrics import SuiteMetrics
from repro.parallel.runner import resolve_workers, run_suite_parallel
from repro.sim.result import SimResult
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name, pattern="streaming", n_ctas=16):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=n_ctas,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            kernel_iterations=1,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_workloads():
    return [
        tiny_workload("p-w1"),
        tiny_workload("p-w2", pattern="hotset"),
        tiny_workload("p-w3", n_ctas=24),
        tiny_workload("p-w4", pattern="stencil"),
    ]


def tiny_configs():
    return [
        baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2),
        baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, link_bandwidth=384.0),
    ]


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers() == 1
        assert resolve_workers(-4) == 1

    def test_malformed_env_falls_back_to_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_default_is_core_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)


class TestParallelMatchesSerial:
    def test_bit_identical_on_cold_cache(self):
        workloads = tiny_workloads()
        configs = tiny_configs()
        serial = [_run_suite_serial(config, workloads, None) for config in configs]
        parallel = run_suite_parallel(
            configs, workloads=workloads, max_workers=4, cache=None
        )
        assert len(parallel) == len(serial)
        for serial_map, parallel_map in zip(serial, parallel):
            assert list(serial_map) == list(parallel_map)  # same iteration order
            for name in serial_map:
                assert serial_map[name].to_dict() == parallel_map[name].to_dict()

    def test_single_config_shape(self):
        [results] = run_suite_parallel(
            tiny_configs()[:1], workloads=tiny_workloads(), max_workers=2, cache=None
        )
        assert set(results) == {"p-w1", "p-w2", "p-w3", "p-w4"}

    def test_duplicate_configs_simulated_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_configs()[0]
        workloads = tiny_workloads()
        first, second = run_suite_parallel(
            [config, config], workloads=workloads, max_workers=2, cache=cache
        )
        for name in first:
            assert first[name].to_dict() == second[name].to_dict()
        # The pair is deduplicated before dispatch: one cache entry per
        # workload, not per output slot.
        assert len(ResultCache(tmp_path)) == len(workloads)

    def test_progress_callback(self):
        seen = []
        run_suite_parallel(
            tiny_configs()[:1],
            workloads=tiny_workloads(),
            max_workers=2,
            cache=None,
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert len(seen) == 4
        assert seen[-1] == (4, 4)
        assert [done for done, _ in seen] == [1, 2, 3, 4]

    def test_warm_cache_fills_duplicate_slots(self, tmp_path):
        # Regression: a cached pair serving several output slots must fan
        # out to slots registered *after* the cache hit during the scan.
        config = tiny_configs()[0]
        workloads = tiny_workloads()
        cold = run_suite_parallel(
            [config, config], workloads=workloads, max_workers=2,
            cache=ResultCache(tmp_path),
        )
        warm = run_suite_parallel(
            [config, config], workloads=workloads, max_workers=2,
            cache=ResultCache(tmp_path),
        )
        names = {workload.name for workload in workloads}
        for results in (*cold, *warm):
            assert set(results) == names
        for cold_map, warm_map in zip(cold, warm):
            for name in names:
                assert cold_map[name].to_dict() == warm_map[name].to_dict()

    def test_serial_progress_counts_only_simulated(self, tmp_path):
        # Serial and parallel paths share one convention: total == pairs
        # actually simulated, so done reaches total on a partly warm cache.
        config = tiny_configs()[0]
        workloads = tiny_workloads()
        _run_suite_serial(config, workloads[:2], ResultCache(tmp_path))
        seen = []
        _run_suite_serial(
            config, workloads, ResultCache(tmp_path),
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_serial_warm_cache_preserves_workload_order(self, tmp_path):
        config = tiny_configs()[0]
        workloads = tiny_workloads()
        _run_suite_serial(config, workloads[2:], ResultCache(tmp_path))
        results = _run_suite_serial(config, workloads, ResultCache(tmp_path))
        assert list(results) == [workload.name for workload in workloads]


class TestParallelCache:
    def test_workers_persist_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_suite_parallel(
            tiny_configs(), workloads=tiny_workloads(), max_workers=3, cache=cache
        )
        shards = list(tmp_path.glob("results-w*.jsonl"))
        assert shards, "workers should write per-process shard files"
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 8  # 4 workloads x 2 configs, no lost entries

    def test_warm_cache_skips_dispatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_suite_parallel(
            tiny_configs(), workloads=tiny_workloads(), max_workers=3, cache=cache
        )
        warm_cache = ResultCache(tmp_path)
        warm = run_suite_parallel(
            tiny_configs(), workloads=tiny_workloads(), max_workers=3, cache=warm_cache
        )
        assert warm_cache.hits == 8
        assert warm_cache.misses == 0
        for cold_map, warm_map in zip(cold, warm):
            for name in cold_map:
                assert cold_map[name].to_dict() == warm_map[name].to_dict()


def _stub_result(tag, index):
    return SimResult(
        workload_name=f"wl-{tag}-{index}",
        system_name="stub",
        cycles=float(index + 1),
        kernels=1,
        ctas=1,
        records=1,
        loads=1,
        stores=0,
        remote_loads=0,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=0,
        page_local=0,
        page_remote=0,
        workload_digest=f"wl-{tag}-{index}",
        system_digest="sys",
    )


def _hammer_cache(directory, tag, count):
    cache = ResultCache(directory)
    for index in range(count):
        cache.put(_stub_result(tag, index))


class TestConcurrentWriters:
    def test_no_lost_entries_across_processes(self, tmp_path):
        processes = [
            multiprocessing.Process(target=_hammer_cache, args=(tmp_path, tag, 25))
            for tag in ("a", "b", "c", "d")
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        # Every line parses and every entry survives.
        with open(tmp_path / "results.jsonl") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 100
        for line in lines:
            json.loads(line)
        assert len(ResultCache(tmp_path)) == 100

    def test_shard_writers_share_namespace(self, tmp_path):
        for shard in ("s1", "s2"):
            cache = ResultCache(tmp_path, shard=shard)
            cache.put(_stub_result(shard, 0))
            assert cache.path.name == f"results-{shard}.jsonl"
        merged = ResultCache(tmp_path)
        assert len(merged) == 2

    def test_duplicate_entries_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_stub_result("dup", 0))
        cache.put(_stub_result("dup", 0))
        assert len(ResultCache(tmp_path)) == 1


class TestSerialFallback:
    def test_repro_workers_1_uses_serial_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")

        def boom(*args, **kwargs):
            raise AssertionError("parallel runner must not be used at 1 worker")

        monkeypatch.setattr(runner, "run_suite_parallel", boom)
        results = run_suites(
            tiny_configs()[:1], workloads=tiny_workloads()[:2], cache=None
        )
        assert set(results[0]) == {"p-w1", "p-w2"}

    def test_run_suites_parallel_when_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        results = run_suites(tiny_configs()[:1], workloads=tiny_workloads()[:2], cache=None)
        assert set(results[0]) == {"p-w1", "p-w2"}


class TestBatchAccounting:
    def test_duplicate_configs_count_per_slot(self, tmp_path, monkeypatch):
        # Regression: with duplicated configs the parallel runner calls
        # cache.get once per unique pair; batch accounting must still
        # count cached/executed per output slot (executed == sims run).
        from repro.parallel import metrics as metrics_mod

        fresh = SuiteMetrics()
        monkeypatch.setattr(metrics_mod, "GLOBAL_METRICS", fresh)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        config = tiny_configs()[0]
        workloads = tiny_workloads()
        run_suites([config, config], workloads=workloads, cache=ResultCache(tmp_path))
        assert fresh.total_pairs == 8
        assert fresh.cached_pairs == 4  # the duplicated slots
        assert fresh.executed_pairs == 4  # sims actually run

        run_suites([config, config], workloads=workloads, cache=ResultCache(tmp_path))
        assert fresh.total_pairs == 16
        assert fresh.cached_pairs == 12  # warm run adds 8 cached slots
        assert fresh.executed_pairs == 4


class TestMetrics:
    def test_counters_and_report(self):
        metrics = SuiteMetrics()
        metrics.record_batch(configs=["a", "b"], total=96, cached=48, wall=4.0, workers=4)
        metrics.record_sim("a", 1.5)
        metrics.record_sim("a", 0.5)
        metrics.record_sim("b", 1.0)
        assert metrics.executed_pairs == 48
        assert metrics.hit_rate == pytest.approx(0.5)
        assert metrics.sims_per_second == pytest.approx(12.0)
        text = metrics.report()
        assert "96 sims" in text
        assert "hit rate 50%" in text
        assert "a: 2 sims" in text

    def test_empty_report(self):
        assert "no suite runs" in SuiteMetrics().report()

    def test_reset(self):
        metrics = SuiteMetrics()
        metrics.record_batch(configs=["a"], total=1, cached=0, wall=1.0, workers=1)
        metrics.reset()
        assert metrics.total_pairs == 0


class TestPairFailures:
    """Structured failure reporting for crashed/hung/raising pairs."""

    def _crasher(self):
        from tests.test_serve import CrashingWorkload

        return CrashingWorkload()

    def _hanger(self):
        from tests.test_serve import HangingWorkload

        return HangingWorkload()

    def _raiser(self):
        from tests.test_serve import RaisingWorkload

        return RaisingWorkload()

    def test_worker_crash_becomes_pair_failure(self):
        from repro.parallel import PairFailure

        config = tiny_configs()[0]
        failures = []
        results = run_suite_parallel(
            [config],
            workloads=[self._crasher(), tiny_workload("pf-ok")],
            max_workers=2,
            cache=None,
            crash_retries=1,
            failures=failures,
        )
        assert len(failures) == 1
        failure = failures[0]
        assert isinstance(failure, PairFailure)
        assert failure.kind == "crash"
        assert failure.workload_name == "crasher"
        # The healthy pair still completes despite the pool rebuilds.
        assert "pf-ok" in results[0]
        assert "crasher" not in results[0]

    def test_hung_pair_times_out(self):
        config = tiny_configs()[0]
        failures = []
        results = run_suite_parallel(
            [config],
            workloads=[self._hanger()],
            max_workers=2,
            cache=None,
            timeout=1.0,
            failures=failures,
        )
        assert [failure.kind for failure in failures] == ["timeout"]
        assert results[0] == {}

    def test_simulation_exception_is_reported_not_retried(self):
        config = tiny_configs()[0]
        failures = []
        results = run_suite_parallel(
            [config],
            workloads=[self._raiser(), tiny_workload("pf-ok2")],
            max_workers=2,
            cache=None,
            failures=failures,
        )
        assert [failure.kind for failure in failures] == ["exception"]
        assert "intentional test failure" in failures[0].error
        assert "pf-ok2" in results[0]

    def test_without_sink_the_batch_raises(self):
        from repro.parallel import SuiteRunError

        config = tiny_configs()[0]
        with pytest.raises(SuiteRunError) as info:
            run_suite_parallel(
                [config],
                workloads=[self._raiser()],
                max_workers=2,
                cache=None,
            )
        assert info.value.failures[0].kind == "exception"


class TestCacheRefresh:
    """Cross-process shard refresh for long-running cache holders."""

    def test_refresh_picks_up_foreign_appends(self, tmp_path):
        config = tiny_configs()[0]
        workload = tiny_workload("cr-w1")
        mine = ResultCache(tmp_path)
        assert mine.refresh() == 0  # cold, empty directory
        other = ResultCache(tmp_path, shard="other")
        from repro.experiments.common import _run_suite_serial

        results = _run_suite_serial(config, [workload], None)
        other.put(results[workload.name])
        assert mine.refresh() == 1
        assert (
            mine.get(workload.digest(), config.digest()).to_dict()
            == results[workload.name].to_dict()
        )
        assert mine.refresh() == 0  # nothing new: stat-skip path

    def test_refresh_tolerates_torn_lines(self, tmp_path):
        config = tiny_configs()[0]
        workload = tiny_workload("cr-w2")
        mine = ResultCache(tmp_path)
        mine.refresh()
        shard = tmp_path / "results-torn.jsonl"
        from repro.experiments.common import RESULT_SCHEMA, _run_suite_serial

        result = _run_suite_serial(config, [workload], None)[workload.name]
        line = json.dumps(
            {
                "key": f"{workload.digest()}##{config.digest()}",
                "schema": RESULT_SCHEMA,
                "result": result.to_dict(),
            }
        )
        shard.write_text(line[: len(line) // 2])  # torn mid-append
        assert mine.refresh() == 0
        shard.write_text(line + "\n")  # append completed
        assert mine.refresh() == 1
