"""Unit and property tests for workload access patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    HotsetPattern,
    IrregularPattern,
    StencilPattern,
    StreamingPattern,
    make_pattern,
)
from repro.workloads.rng import rng_for


def gen(pattern, cta=0, n_ctas=8, n_accesses=64, footprint=1024, seed=("t", 0)):
    return pattern.generate(cta, n_ctas, n_accesses, footprint, rng_for(*seed, cta))


class TestStreaming:
    def test_stays_in_chunk(self):
        pattern = StreamingPattern()
        addrs = gen(pattern, cta=3, n_ctas=8, footprint=800)
        chunk = 800 // 8
        assert addrs.min() >= 3 * chunk
        assert addrs.max() < 4 * chunk

    def test_sequential_with_wrap(self):
        pattern = StreamingPattern()
        addrs = gen(pattern, cta=0, n_ctas=8, n_accesses=250, footprint=800)
        assert addrs[0] == 0
        assert addrs[1] == 1
        assert addrs[100] == 0  # wrapped at chunk length 100

    def test_stride(self):
        pattern = StreamingPattern(stride=3)
        addrs = gen(pattern, cta=0, n_ctas=8, n_accesses=10, footprint=800)
        assert list(addrs[:4]) == [0, 3, 6, 9]

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="stride"):
            StreamingPattern(stride=0)


class TestStencil:
    def test_halo_reaches_neighbor_chunks_only(self):
        pattern = StencilPattern(halo_fraction=0.3, halo_lines=4)
        cta, n_ctas, footprint = 4, 8, 800
        addrs = gen(pattern, cta=cta, n_ctas=n_ctas, n_accesses=200, footprint=footprint)
        chunk = footprint // n_ctas
        own = set(range(cta * chunk, (cta + 1) * chunk))
        left_border = set(range(cta * chunk - 4, cta * chunk))
        right_border = set(range((cta + 1) * chunk, (cta + 1) * chunk + 4))
        allowed = own | left_border | right_border
        assert set(int(a) for a in addrs) <= allowed
        assert any(int(a) not in own for a in addrs)  # some halo present

    def test_deterministic_across_kernels(self):
        """Stencil streams must repeat on kernel re-launch (Figure 12)."""
        pattern = StencilPattern(halo_fraction=0.2)
        assert not pattern.kernel_variant
        a = gen(pattern, seed=("stencil", 0))
        b = gen(pattern, seed=("stencil", 0))
        assert np.array_equal(a, b)

    def test_zero_halo_is_pure_streaming(self):
        pattern = StencilPattern(halo_fraction=0.0)
        addrs = gen(pattern, cta=2, n_ctas=8, footprint=800)
        chunk = 100
        assert addrs.min() >= 2 * chunk
        assert addrs.max() < 3 * chunk

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="halo_fraction"):
            StencilPattern(halo_fraction=1.0)


class TestIrregular:
    def test_covers_footprint(self):
        pattern = IrregularPattern(hot_fraction=0.0)
        addrs = gen(pattern, n_accesses=2000, footprint=100)
        assert addrs.min() >= 0
        assert addrs.max() < 100
        assert len(np.unique(addrs)) > 50

    def test_hot_region_bias(self):
        pattern = IrregularPattern(hot_fraction=0.6, hot_lines=10)
        addrs = gen(pattern, n_accesses=4000, footprint=1000)
        hot = (addrs < 10).mean()
        assert hot > 0.5  # ~0.6 + uniform spill

    def test_kernel_variant(self):
        assert IrregularPattern().kernel_variant


class TestHotset:
    def test_mixes_hot_and_private(self):
        pattern = HotsetPattern(hot_fraction=0.5, hot_lines=16)
        addrs = gen(pattern, cta=1, n_ctas=4, n_accesses=400, footprint=416)
        hot = addrs[addrs < 16]
        cold = addrs[addrs >= 16]
        assert len(hot) > 100
        assert len(cold) > 100
        # Cold accesses stay in this CTA's chunk of the cold region.
        cold_chunk = (416 - 16) // 4
        assert cold.min() >= 16 + cold_chunk
        assert cold.max() < 16 + 2 * cold_chunk

    def test_not_kernel_variant(self):
        assert not HotsetPattern().kernel_variant


class TestRegistry:
    def test_make_pattern_with_params(self):
        pattern = make_pattern("irregular", hot_fraction=0.1, hot_lines=5)
        assert isinstance(pattern, IrregularPattern)
        assert pattern.hot_fraction == 0.1

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            make_pattern("zigzag")

    def test_digest_includes_params(self):
        assert "0.3" in StencilPattern(halo_fraction=0.3).digest()


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["streaming", "stencil", "irregular", "hotset"]),
    cta=st.integers(min_value=0, max_value=15),
    n_accesses=st.integers(min_value=1, max_value=200),
    footprint=st.integers(min_value=64, max_value=4096),
)
def test_patterns_produce_valid_addresses(name, cta, n_accesses, footprint):
    """Property: every pattern yields n in-footprint line addresses."""
    pattern = make_pattern(name)
    addrs = pattern.generate(cta, 16, n_accesses, footprint, rng_for(name, cta))
    assert len(addrs) == n_accesses
    assert addrs.min() >= 0
    assert addrs.max() < footprint


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(["streaming", "stencil", "hotset"]),
    cta=st.integers(min_value=0, max_value=7),
)
def test_non_variant_patterns_are_reproducible(name, cta):
    """Property: same seed -> identical stream (cross-kernel locality)."""
    pattern = make_pattern(name)
    a = pattern.generate(cta, 8, 100, 2048, rng_for("x", cta))
    b = pattern.generate(cta, 8, 100, 2048, rng_for("x", cta))
    assert np.array_equal(a, b)
