"""Unit tests for SimResult metrics and serialization."""

import pytest

from repro.core.energy import IntegrationTier
from repro.memory.cache import CacheStats
from repro.sim.result import SimResult


def make_result(**overrides):
    base = dict(
        workload_name="wl",
        system_name="sys",
        cycles=1000.0,
        kernels=2,
        ctas=64,
        records=512,
        loads=2000,
        stores=500,
        remote_loads=1500,
        remote_stores=375,
        l1=CacheStats(hits=500, misses=2000),
        l15=CacheStats(),
        l2=CacheStats(hits=1000, misses=1000),
        dram_bytes_read=128000,
        dram_bytes_written=64000,
        link_bytes=500000,
        page_local=625,
        page_remote=1875,
        link_tier="package",
        workload_digest="wd",
        system_digest="sd",
    )
    base.update(overrides)
    return SimResult(**base)


class TestDerivedMetrics:
    def test_accesses(self):
        assert make_result().accesses == 2500

    def test_inter_gpm_bandwidth(self):
        result = make_result()
        assert result.inter_gpm_bandwidth == pytest.approx(500.0)
        assert result.inter_gpm_tbps == pytest.approx(0.5)

    def test_zero_cycles_bandwidth(self):
        assert make_result(cycles=0.0).inter_gpm_bandwidth == 0.0

    def test_dram_totals(self):
        result = make_result()
        assert result.dram_bytes == 192000
        assert result.dram_bandwidth == pytest.approx(192.0)

    def test_remote_fraction(self):
        assert make_result().remote_access_fraction == pytest.approx(0.75)


class TestSpeedup:
    def test_speedup_over(self):
        fast = make_result(cycles=500.0)
        slow = make_result(cycles=1000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_rejects_workload_mismatch(self):
        with pytest.raises(ValueError, match="same workload"):
            make_result().speedup_over(make_result(workload_name="other"))

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError, match="zero-cycle"):
            make_result(cycles=0.0).speedup_over(make_result())


class TestEnergy:
    def test_package_tier_energy(self):
        energy = make_result().energy
        assert energy.inter_module_tier is IntegrationTier.PACKAGE
        assert energy.total_joules > 0

    def test_board_tier_costs_more(self):
        package = make_result(link_tier="package").energy
        board = make_result(link_tier="board").energy
        assert board.inter_module_joules > package.inter_module_joules


class TestSerialization:
    def test_round_trip(self):
        original = make_result()
        restored = SimResult.from_dict(original.to_dict())
        assert restored == original

    def test_round_trip_preserves_cache_stats(self):
        restored = SimResult.from_dict(make_result().to_dict())
        assert restored.l1.hits == 500
        assert restored.l2.hit_rate == pytest.approx(0.5)

    def test_summary_mentions_key_facts(self):
        text = make_result().summary()
        assert "wl" in text
        assert "sys" in text
