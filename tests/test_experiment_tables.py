"""Unit tests for the static table experiments (Tables 1-4)."""

import pytest

from repro.experiments import table1_history, table2_domains, table3_baseline, table4_workloads
from repro.workloads.synthetic import Category


class TestTable1:
    def test_four_generations(self):
        rows = table1_history.run_table1()
        assert [g.name for g in rows] == ["Fermi", "Kepler", "Maxwell", "Pascal"]

    def test_pascal_values(self):
        pascal = table1_history.run_table1()[-1]
        assert pascal.sms == 56
        assert pascal.bandwidth_gbps == 720.0
        assert pascal.transistors_billion == 15.3

    def test_die_size_near_reticle_limit(self):
        assert 0.7 < table1_history.die_size_headroom() < 1.0

    def test_transistor_growth_slowing(self):
        factors = table1_history.transistor_growth_factors()
        assert len(factors) == 3
        assert all(f > 1.0 for f in factors)

    def test_report_renders(self):
        text = table1_history.report()
        assert "Fermi" in text and "Pascal" in text


class TestTable2:
    def test_monotonicity(self):
        assert table2_domains.bandwidth_monotone_decreasing()
        assert table2_domains.energy_monotone_increasing()

    def test_package_advantage(self):
        assert table2_domains.package_advantage_over_board() == pytest.approx(20.0)

    def test_rows(self):
        rows = table2_domains.run_table2()
        assert [row[0] for row in rows] == ["chip", "package", "board", "system"]

    def test_report_renders(self):
        assert "pJ/bit" in table2_domains.report()


class TestTable3:
    def test_model_matches_paper(self):
        assert table3_baseline.matches_paper()

    def test_full_scale_inversion(self):
        assert table3_baseline.full_scale_bytes(512 << 10) == 16 << 20

    def test_rows_cover_every_parameter(self):
        rows = table3_baseline.run_table3()
        parameters = {row[0] for row in rows}
        assert "Total SMs" in parameters
        assert "Total DRAM bandwidth" in parameters
        assert "Inter-GPM interconnect" in parameters

    def test_report_renders(self):
        assert "3 TB/s" in table3_baseline.report()


class TestTable4:
    def test_seventeen_rows(self):
        assert len(table4_workloads.run_table4()) == 17

    def test_paper_footprints_match_table(self):
        rows = {row[0]: row[3] for row in table4_workloads.run_table4()}
        for name, footprint in table4_workloads.PAPER_FOOTPRINTS_MB.items():
            assert rows[name] == footprint

    def test_composition(self):
        composition = table4_workloads.suite_composition()
        assert composition[Category.M_INTENSIVE] == 17
        assert composition[Category.C_INTENSIVE] == 16
        assert composition[Category.LIMITED_PARALLELISM] == 15
        assert composition["total"] == 48

    def test_report_renders(self):
        text = table4_workloads.report()
        assert "Stream" in text
