"""Unit and property tests for the banded, global-stride and biased
irregular patterns (added for Sections 5.2/5.3 fidelity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    BandedPattern,
    GlobalStridePattern,
    IrregularPattern,
    make_pattern,
)
from repro.workloads.rng import rng_for


def gen(pattern, cta=0, n_ctas=256, n_accesses=512, footprint=8192, seed=("x",)):
    return pattern.generate(cta, n_ctas, n_accesses, footprint, rng_for(*seed, cta))


class TestBanded:
    def test_band_membership(self):
        pattern = BandedPattern(band_width_ctas=64)
        assert pattern.band_of_cta(0) == 0
        assert pattern.band_of_cta(63) == 0
        assert pattern.band_of_cta(64) == 1

    def test_band_accesses_stay_in_own_band(self):
        pattern = BandedPattern(band_fraction=0.5, band_width_ctas=64, band_lines=128)
        n_ctas, footprint = 256, 8192
        n_bands, band_lines, band_region = pattern._layout(n_ctas, footprint)
        assert n_bands == 4
        for cta in (0, 100, 255):
            addrs = gen(pattern, cta=cta, n_ctas=n_ctas, footprint=footprint)
            band = pattern.band_of_cta(cta)
            in_band = addrs[addrs < band_region]
            assert len(in_band) > 0
            assert in_band.min() >= band * band_lines
            assert in_band.max() < (band + 1) * band_lines

    def test_private_accesses_disjoint_between_ctas(self):
        pattern = BandedPattern(band_fraction=0.3, band_width_ctas=64, band_lines=64)
        _, _, band_region = pattern._layout(256, 8192)
        a = set(int(x) for x in gen(pattern, cta=10) if x >= band_region)
        b = set(int(x) for x in gen(pattern, cta=200) if x >= band_region)
        assert not (a & b)

    def test_band_skew_concentrates_front(self):
        flat = BandedPattern(band_fraction=0.9, band_lines=512, band_skew=1.0)
        skewed = BandedPattern(band_fraction=0.9, band_lines=512, band_skew=3.0)
        _, lines, region = skewed._layout(256, 65536)
        a = gen(flat, n_accesses=4000, footprint=65536)
        b = gen(skewed, n_accesses=4000, footprint=65536)
        front = lines // 4
        assert (b[b < region] < front).mean() > (a[a < region] < front).mean()

    def test_small_footprint_caps_band(self):
        pattern = BandedPattern(band_lines=100000)
        addrs = gen(pattern, footprint=1024)
        assert addrs.max() < 1024

    def test_deterministic_across_kernels(self):
        pattern = BandedPattern()
        assert not pattern.kernel_variant
        assert np.array_equal(gen(pattern, cta=5), gen(pattern, cta=5))

    def test_validation(self):
        with pytest.raises(ValueError, match="band_fraction"):
            BandedPattern(band_fraction=1.0)
        with pytest.raises(ValueError, match="band_width"):
            BandedPattern(band_width_ctas=0)
        with pytest.raises(ValueError, match="band_lines"):
            BandedPattern(band_lines=0)
        with pytest.raises(ValueError, match="band_skew"):
            BandedPattern(band_skew=0.5)


class TestGlobalStride:
    def test_no_line_is_shared_between_ctas(self):
        pattern = GlobalStridePattern()
        n_ctas = 157
        a = set(int(x) for x in gen(pattern, cta=3, n_ctas=n_ctas, footprint=100000))
        b = set(int(x) for x in gen(pattern, cta=4, n_ctas=n_ctas, footprint=100000))
        assert not (a & b)

    def test_pages_are_shared_between_ctas(self):
        """The property that defeats first-touch: many CTAs per page."""
        pattern = GlobalStridePattern()
        n_ctas, footprint = 157, 100000
        pages_a = {int(x) // 16 for x in gen(pattern, cta=3, n_ctas=n_ctas, footprint=footprint)}
        shuffled_neighbors = set()
        for cta in range(8):
            shuffled_neighbors |= {
                int(x) // 16 for x in gen(pattern, cta=cta, n_ctas=n_ctas, footprint=footprint)
            }
        assert pages_a & shuffled_neighbors

    def test_shuffle_breaks_index_adjacency(self):
        plain = GlobalStridePattern(shuffle=False)
        shuffled = GlobalStridePattern(shuffle=True)
        n_ctas = 157
        lane_plain = [int(gen(plain, cta=c, n_ctas=n_ctas, n_accesses=1)[0]) for c in range(4)]
        lane_shuf = [int(gen(shuffled, cta=c, n_ctas=n_ctas, n_accesses=1)[0]) for c in range(4)]
        assert lane_plain == [0, 1, 2, 3]
        diffs = [b - a for a, b in zip(lane_shuf, lane_shuf[1:])]
        assert any(abs(d) > 1 for d in diffs)

    def test_validation(self):
        with pytest.raises(ValueError, match="stride_ctas"):
            GlobalStridePattern(stride_ctas=0)


class TestIrregularLocalBias:
    def test_bias_concentrates_in_own_chunk(self):
        biased = IrregularPattern(hot_fraction=0.0, local_bias=0.8)
        n_ctas, footprint = 64, 64000
        cta = 10
        addrs = gen(biased, cta=cta, n_ctas=n_ctas, n_accesses=4000, footprint=footprint)
        chunk = footprint // n_ctas
        own = ((addrs >= cta * chunk) & (addrs < (cta + 1) * chunk)).mean()
        assert own > 0.6

    def test_zero_bias_is_uniform(self):
        uniform = IrregularPattern(hot_fraction=0.0, local_bias=0.0)
        addrs = gen(uniform, cta=10, n_ctas=64, n_accesses=4000, footprint=64000)
        chunk_share = ((addrs >= 10000) & (addrs < 11000)).mean()
        assert chunk_share < 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="local_bias"):
            IrregularPattern(local_bias=1.5)


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(["banded", "global_stride"]),
    cta=st.integers(min_value=0, max_value=63),
    n_accesses=st.integers(min_value=1, max_value=300),
    footprint=st.integers(min_value=512, max_value=16384),
)
def test_new_patterns_produce_valid_addresses(name, cta, n_accesses, footprint):
    """Property: new patterns also yield n in-footprint line addresses."""
    pattern = make_pattern(name)
    addrs = pattern.generate(cta, 64, n_accesses, footprint, rng_for(name, cta))
    assert len(addrs) == n_accesses
    assert addrs.min() >= 0
    assert addrs.max() < footprint
