"""Unit and integration tests for the page-migration extension."""

import pytest

from dataclasses import replace

from repro.core.gpu import build_system
from repro.core.presets import baseline_mcm_gpu
from repro.memory.migration import MigratingFirstTouch
from repro.memory.placement import make_placement


class TestPolicyUnit:
    def test_registered(self):
        assert isinstance(make_placement("migrating_first_touch", 4), MigratingFirstTouch)

    def test_first_touch_semantics(self):
        policy = MigratingFirstTouch(4, threshold=4)
        assert policy.partition_of_page(10, 2) == 2
        assert policy.first_touch_allocations == 1

    def test_migrates_after_threshold(self):
        policy = MigratingFirstTouch(4, threshold=3)
        policy.partition_of_page(5, 0)  # home: 0
        assert policy.partition_of_page(5, 1) == 0
        assert policy.partition_of_page(5, 1) == 0
        # Third consecutive remote access from GPM 1 triggers migration.
        assert policy.partition_of_page(5, 1) == 1
        assert policy.migrations == 1
        assert policy.pending_migration == (5, 0, 1)
        assert policy.home_of(5) == 1

    def test_local_access_resets_pressure(self):
        policy = MigratingFirstTouch(4, threshold=3)
        policy.partition_of_page(5, 0)
        policy.partition_of_page(5, 1)
        policy.partition_of_page(5, 1)
        policy.partition_of_page(5, 0)  # owner touches: reset
        policy.partition_of_page(5, 1)
        policy.partition_of_page(5, 1)
        assert policy.migrations == 0

    def test_contended_page_does_not_ping_pong(self):
        policy = MigratingFirstTouch(4, threshold=3)
        policy.partition_of_page(5, 0)
        for _ in range(10):
            policy.partition_of_page(5, 1)
            policy.partition_of_page(5, 2)
        assert policy.migrations == 0  # alternating requesters cancel out

    def test_migration_cap(self):
        policy = MigratingFirstTouch(4, threshold=2, max_migrations_per_page=1)
        policy.partition_of_page(5, 0)
        policy.partition_of_page(5, 1)
        policy.partition_of_page(5, 1)  # -> migrates to 1
        policy.pending_migration = None
        assert policy.home_of(5) == 1
        for _ in range(10):
            policy.partition_of_page(5, 2)
        assert policy.home_of(5) == 1  # cap reached, stays put
        assert policy.migrations == 1

    def test_reset(self):
        policy = MigratingFirstTouch(4, threshold=2)
        policy.partition_of_page(5, 0)
        policy.reset()
        assert policy.pages_mapped == 0
        assert policy.home_of(5) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            MigratingFirstTouch(4, threshold=0)
        with pytest.raises(ValueError, match="max_migrations"):
            MigratingFirstTouch(4, max_migrations_per_page=-1)


class TestMigrationInSystem:
    def _system(self):
        config = replace(
            baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name="migrating"),
            placement="migrating_first_touch",
        )
        return build_system(config)

    def test_migration_cost_charged(self):
        system = self._system()
        policy = system.page_table.policy
        policy.threshold = 3
        sm0 = system.gpms[0].sms[0]
        sm1 = system.gpms[1].sms[0]
        # GPM 0 touches page 0 first (lines 0..15 on 2KB pages).
        system.memsys.load(0.0, sm0, 0)
        reads_before = system.gpms[0].dram.reads
        # GPM 1 hammers the page until it migrates.
        for i in range(6):
            system.memsys.load(float(i), sm1, 1 + i % 8)
        assert policy.migrations >= 1
        assert system.memsys.migration_bytes >= system.address_map.page_bytes
        # The copy read the page from the old home.
        assert system.gpms[0].dram.reads > reads_before

    def test_migrated_page_serves_locally(self):
        system = self._system()
        policy = system.page_table.policy
        policy.threshold = 2
        sm0 = system.gpms[0].sms[0]
        sm1 = system.gpms[1].sms[0]
        system.memsys.load(0.0, sm0, 0)
        for i in range(4):
            system.memsys.load(float(i), sm1, 1 + i)
        remote_before = system.memsys.remote_loads
        system.memsys.load(10.0, sm1, 6)  # same page, now local to GPM 1
        assert system.memsys.remote_loads == remote_before

    def test_end_to_end_simulation_runs(self):
        from repro.sim.engine import SimulationEngine
        from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec

        workload = SyntheticWorkload(
            WorkloadSpec(
                name="migrate-e2e",
                category=Category.M_INTENSIVE,
                pattern="streaming",
                n_ctas=32,
                groups_per_cta=2,
                records_per_group=3,
                accesses_per_record=3,
                kernel_iterations=2,
                footprint_bytes=512 * 1024,
            )
        )
        result = SimulationEngine(self._system()).run(workload)
        assert result.ctas == 64
        assert result.cycles > 0
