"""Tests for the validation subsystem (invariants, properties, golden, fidelity)."""

import importlib.util
import sys
import types
from dataclasses import replace
from math import inf
from pathlib import Path

import pytest

from repro.core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from repro.sim.simulator import Simulator
from repro.validate import (
    GoldenStore,
    InvariantError,
    LiveValidator,
    check_live_system,
    check_result,
    evaluate_checks,
    validated_run,
)
from repro.validate.fidelity import FidelityCheck, report as fidelity_report
from repro.validate.golden import metrics_of, run_golden_matrix
from repro.validate.properties import micro_suite, run_properties


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the shared result cache at a per-test directory."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture(scope="module")
def real_run():
    workload = micro_suite(1)[0]
    config = baseline_mcm_gpu()
    return Simulator(config).run(workload), config


class TestCheckResult:
    def test_clean_on_real_simulation(self, real_run):
        result, config = real_run
        assert check_result(result, config=config) == []

    def test_clean_without_config(self, real_run):
        result, _ = real_run
        assert check_result(result) == []

    @pytest.mark.parametrize(
        "field, delta, expected_check",
        [
            ("dram_bytes_read", 128, "dram-read-conservation"),
            ("dram_bytes_written", 128, "dram-write-conservation"),
            ("page_remote", 1, "routing-conservation"),
            ("remote_loads", 1, "remote-conservation"),
            ("loads", -1, "l1-misses"),
        ],
    )
    def test_tampering_is_caught(self, real_run, field, delta, expected_check):
        result, config = real_run
        tampered = replace(result, **{field: getattr(result, field) + delta})
        checks = {v.check for v in check_result(tampered, config=config)}
        assert expected_check in checks

    def test_negative_counter_is_caught(self, real_run):
        result, _ = real_run
        tampered = replace(result, link_bytes=-1)
        checks = {v.check for v in check_result(tampered)}
        assert "non-negative" in checks

    def test_link_bytes_out_of_band_is_caught(self, real_run):
        result, config = real_run
        inflated = replace(result, link_bytes=result.link_bytes * 100)
        checks = {v.check for v in check_result(inflated, config=config)}
        assert "link-upper-bound" in checks
        deflated = replace(result, link_bytes=0)
        checks = {v.check for v in check_result(deflated, config=config)}
        assert "link-lower-bound" in checks

    def test_phantom_link_traffic_is_caught(self, real_run):
        result, _ = real_run
        phantom = replace(
            result,
            remote_loads=0,
            remote_stores=0,
            page_local=result.page_local + result.page_remote,
            page_remote=0,
            link_bytes=4096,
        )
        checks = {v.check for v in check_result(phantom)}
        assert "link-zero" in checks


class TestLiveValidator:
    def test_validated_run_is_clean_and_checked(self):
        workload = micro_suite(1)[0]
        result, validator = validated_run(workload, optimized_mcm_gpu())
        assert validator.kernels_checked >= 1
        assert validator.runs_checked == 1
        assert validator.violations == []
        assert result.cycles > 0

    def test_results_bit_identical_with_and_without(self):
        workload = micro_suite(1)[0]
        config = baseline_mcm_gpu()
        plain = Simulator(config).run(workload)
        validated, _ = validated_run(workload, config)
        assert plain == validated

    def test_strict_raises_on_violation(self, real_run):
        result, config = real_run
        simulator = Simulator(config)
        validator = LiveValidator(strict=True)
        tampered = replace(result, dram_bytes_read=result.dram_bytes_read + 1)
        with pytest.raises(InvariantError, match="dram-read-conservation"):
            validator.after_run(simulator.system, tampered)

    def test_non_strict_accumulates(self, real_run):
        result, config = real_run
        simulator = Simulator(config)
        validator = LiveValidator(strict=False)
        tampered = replace(result, dram_bytes_read=result.dram_bytes_read + 1)
        validator.after_run(simulator.system, tampered)
        assert any(v.check == "dram-read-conservation" for v in validator.violations)

    def test_live_system_clean_after_run(self):
        config = baseline_mcm_gpu()
        simulator = Simulator(config)
        simulator.run(micro_suite(1)[0])
        assert check_live_system(simulator.system) == []


class TestProperties:
    def test_all_properties_pass_on_micro_suite(self):
        outcomes = run_properties(micro_suite(1))
        assert [outcome.name for outcome in outcomes] == [
            "bandwidth-monotonic",
            "l15-link-bytes",
            "locality-stack",
            "single-gpm-local",
            "deterministic",
        ]
        failed = [outcome for outcome in outcomes if not outcome.passed]
        assert not failed, failed

    def test_micro_suite_bounds(self):
        assert len(micro_suite(4)) == 4
        with pytest.raises(ValueError):
            micro_suite(0)
        with pytest.raises(ValueError):
            micro_suite(5)


class TestGolden:
    def small_matrix(self):
        return run_golden_matrix(
            configs=[baseline_mcm_gpu()], workloads=micro_suite(1)
        )

    def test_bless_then_compare_round_trips(self, tmp_path):
        store = GoldenStore(tmp_path / "metrics.json")
        results = self.small_matrix()
        store.bless(results)
        report = store.compare(results)
        assert report.clean
        assert "reproduced exactly" in report.render(telemetry=False)

    def test_perturbation_produces_drift(self, tmp_path):
        store = GoldenStore(tmp_path / "metrics.json")
        results = self.small_matrix()
        store.bless(results)
        perturbed = [replace(results[0], cycles=results[0].cycles * 1.05)]
        report = store.compare(perturbed)
        assert not report.clean
        drifted = {drift.metric for drift in report.drifts}
        assert "cycles" in drifted
        cycles_drift = next(d for d in report.drifts if d.metric == "cycles")
        assert cycles_drift.rel_delta == pytest.approx(0.05)
        assert "cycles" in report.render(telemetry=False)

    def test_added_and_removed_keys_reported(self, tmp_path):
        store = GoldenStore(tmp_path / "metrics.json")
        results = self.small_matrix()
        store.bless(results)
        renamed = [replace(results[0], system_name="other-system")]
        report = store.compare(renamed)
        assert not report.clean
        assert report.removed_keys and report.added_keys

    def test_digest_change_flagged(self, tmp_path):
        store = GoldenStore(tmp_path / "metrics.json")
        results = self.small_matrix()
        store.bless(results)
        moved = [replace(results[0], system_digest="different")]
        report = store.compare(moved)
        assert any("system digest" in note for note in report.digest_changes)

    def test_metrics_cover_headline_counters(self, tmp_path):
        metrics = metrics_of(self.small_matrix()[0])
        for key in ("cycles", "link_bytes", "dram_bytes_read", "l2_misses"):
            assert key in metrics


def synthetic_fidelity_data(**overrides):
    data = {
        "m8": 1.10,
        "m16": 1.12,
        "m32": 1.15,
        "c16": 1.02,
        "ds_m": 1.25,
        "ft8_m": 1.55,
        "ft16_m": 1.40,
        "curve": [0.85] * 3 + [1.2] * 43 + [2.5, 3.0],
        "optimized": 1.25,
        "l15_alone": 1.06,
        "monolithic": 1.35,
        "multi_gpu": 0.95,
        "multi_gpu_opt": 1.05,
    }
    data.update(overrides)
    return data


class TestFidelity:
    def test_synthetic_paper_shape_passes(self):
        checks = evaluate_checks(synthetic_fidelity_data())
        failed = [check for check in checks if not check.passed]
        assert not failed, failed

    def test_broken_ordering_fails(self):
        checks = evaluate_checks(synthetic_fidelity_data(m16=1.20, m32=1.10))
        by_name = {check.name: check for check in checks}
        assert not by_name["fig6-capacity-32-over-16"].passed

    def test_over_reward_fails_high(self):
        checks = evaluate_checks(synthetic_fidelity_data(ft8_m=3.0))
        by_name = {check.name: check for check in checks}
        assert not by_name["fig13-8mb-m-geomean"].passed

    def test_widened_bands_absorb_drift(self):
        check = FidelityCheck("x", "ref", 1.1, 1.3, 1.05)
        assert not check.passed
        assert check.widened(0.10).passed

    def test_report_renders_verdicts(self):
        checks = evaluate_checks(synthetic_fidelity_data())
        text = fidelity_report(checks)
        assert "all passed" in text
        broken = [replace(checks[0], value=-1.0)] + checks[1:]
        assert "FAILED" in fidelity_report(broken)

    def test_bands_cover_headline_figures(self):
        names = {check.name for check in evaluate_checks(synthetic_fidelity_data())}
        for fig in ("fig6", "fig9", "fig13", "fig15", "fig16", "fig17"):
            assert any(name.startswith(fig) for name in names)


class TestRunExperimentExitCode:
    def load_script(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "run_experiment.py"
        spec = importlib.util.spec_from_file_location("run_experiment_script", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def fake_experiments(self, fail):
        def boom():
            raise RuntimeError("experiment exploded")

        def fine():
            return "ok"

        exp = types.SimpleNamespace(
            __doc__="Fake experiment.",
            run_fake=boom if fail else fine,
            report=lambda result=None: "fake report",
        )
        return {"fake": (exp, "run_fake")}

    def test_failing_experiment_exits_nonzero(self, monkeypatch, capsys):
        script = self.load_script()
        monkeypatch.setattr(script, "EXPERIMENTS", self.fake_experiments(fail=True))
        monkeypatch.setattr(sys, "argv", ["run_experiment.py", "fake"])
        assert script.main() == 1
        captured = capsys.readouterr()
        assert "experiment exploded" in captured.err
        assert "fake" in captured.err

    def test_passing_experiment_exits_zero(self, monkeypatch, capsys):
        script = self.load_script()
        monkeypatch.setattr(script, "EXPERIMENTS", self.fake_experiments(fail=False))
        monkeypatch.setattr(sys, "argv", ["run_experiment.py", "fake"])
        assert script.main() == 0
        assert "fake report" in capsys.readouterr().out
