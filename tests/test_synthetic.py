"""Unit tests for synthetic workload specs and trace generation."""

import numpy as np
import pytest

from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def spec(**overrides):
    base = dict(
        name="test-wl",
        category=Category.M_INTENSIVE,
        pattern="streaming",
        n_ctas=16,
        groups_per_cta=2,
        records_per_group=3,
        accesses_per_record=4,
        write_fraction=0.25,
        compute_per_record=5.0,
        kernel_iterations=2,
        footprint_bytes=1 << 20,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestSpecValidation:
    def test_rejects_zero_ctas(self):
        with pytest.raises(ValueError, match="n_ctas"):
            spec(n_ctas=0)

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError, match="footprint"):
            spec(footprint_bytes=64)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError, match="kernel_iterations"):
            spec(kernel_iterations=0)

    def test_rejects_negative_imbalance(self):
        with pytest.raises(ValueError, match="imbalance"):
            spec(imbalance=-0.5)


class TestSpecDerived:
    def test_footprint_lines(self):
        assert spec(footprint_bytes=1280).footprint_lines == 10

    def test_records_for_cta_with_imbalance(self):
        skewed = spec(imbalance=1.0, records_per_group=10)
        assert skewed.records_for_cta(0) == 10
        assert skewed.records_for_cta(15) == round(10 * (1 + 15 / 16))

    def test_records_uniform_without_imbalance(self):
        flat = spec()
        assert flat.records_for_cta(0) == flat.records_for_cta(15)

    def test_total_accesses(self):
        s = spec()
        expected = 16 * 2 * 3 * 4 * 2  # ctas*groups*records*accesses*kernels
        assert s.total_accesses() == expected

    def test_digest_distinguishes_specs(self):
        assert spec().digest() != spec(n_ctas=17).digest()
        assert spec().digest() != spec(write_fraction=0.3).digest()
        assert spec().digest() == spec().digest()

    def test_scaled_down(self):
        small = spec(n_ctas=100).scaled_down(0.25)
        assert small.n_ctas == 25
        assert small.footprint_bytes <= spec().footprint_bytes
        with pytest.raises(ValueError, match="factor"):
            spec().scaled_down(0.0)


class TestTraceGeneration:
    def test_kernel_count(self):
        workload = SyntheticWorkload(spec(kernel_iterations=3))
        kernels = list(workload.kernels())
        assert len(kernels) == 3
        assert all(k.n_ctas == 16 for k in kernels)

    def test_trace_shape(self):
        workload = SyntheticWorkload(spec())
        kernel = next(iter(workload.kernels()))
        trace = kernel.trace_fn(0)
        assert len(trace) == 2  # groups
        assert len(trace[0]) == 3  # records
        assert trace[0][0].n_accesses == 4

    def test_trace_deterministic(self):
        workload = SyntheticWorkload(spec())
        kernel = next(iter(workload.kernels()))
        assert kernel.trace_fn(5) == kernel.trace_fn(5)

    def test_iterative_kernels_reuse_addresses(self):
        """Streaming/stencil workloads touch identical lines every launch."""
        workload = SyntheticWorkload(spec(pattern="stencil"))
        k0, k1 = list(workload.kernels())
        assert k0.trace_fn(3) == k1.trace_fn(3)

    def test_irregular_kernels_differ(self):
        workload = SyntheticWorkload(
            spec(pattern="irregular", pattern_params=(("hot_fraction", 0.2),))
        )
        k0, k1 = list(workload.kernels())
        assert k0.trace_fn(3) != k1.trace_fn(3)

    def test_write_fraction_realized(self):
        workload = SyntheticWorkload(spec(write_fraction=0.25, records_per_group=50))
        kernel = next(iter(workload.kernels()))
        trace = kernel.trace_fn(0)
        reads = sum(len(r.reads) for group in trace for r in group)
        writes = sum(len(r.writes) for group in trace for r in group)
        assert writes / (reads + writes) == pytest.approx(0.25, abs=0.02)

    def test_addresses_within_footprint(self):
        workload = SyntheticWorkload(spec())
        kernel = next(iter(workload.kernels()))
        lines = [
            addr
            for trace in (kernel.trace_fn(c) for c in range(16))
            for group in trace
            for record in group
            for addr in record.reads + record.writes
        ]
        assert min(lines) >= 0
        assert max(lines) < spec().footprint_lines

    def test_category_property(self):
        assert SyntheticWorkload(spec()).category is Category.M_INTENSIVE


class TestCategory:
    def test_high_parallelism_flag(self):
        assert Category.M_INTENSIVE.high_parallelism
        assert Category.C_INTENSIVE.high_parallelism
        assert not Category.LIMITED_PARALLELISM.high_parallelism
