"""Bit-identity and accounting tests for the hot-path performance pass.

Three contracts:

1. **Bit-identity** — the batched memory path (``MemorySystem.load_batch``
   / ``store_batch`` driven by the engine's ``_drain_fast`` loop) produces
   a ``SimResult`` identical *field for field* to the reference per-line
   path, on every behavioural regime in the matrix.  The per-line path is
   kept behind ``engine.batched`` / the ``REPRO_SIM_PERLINE`` env knob as
   the executable specification.
2. **Trace memoization** — materialized CTA traces are reused across
   kernel iterations and across runs (``materializations`` stays flat),
   and kernel-variant patterns still materialize per kernel.
3. **Store accounting** — every store lands in exactly one L1 counter
   (``write_hits`` or ``bypasses``; the probe-miss case used to vanish),
   and the reported hit *rates* are load-only (the Figure 6/7 quantity).
"""

from dataclasses import asdict

import pytest

from repro.core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
)
from repro.memory.cache import CacheStats, SetAssocCache
from repro.sim.simulator import Simulator
from repro.telemetry import Telemetry
from repro.validate.invariants import check_result
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name="pi-w", pattern="streaming", write_fraction=0.25, iterations=2):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=32,
            groups_per_cta=2,
            records_per_group=3,
            accesses_per_record=4,
            write_fraction=write_fraction,
            kernel_iterations=iterations,
            footprint_bytes=256 * 1024,
        )
    )


def simulate_with_path(workload, config, batched):
    """Run ``workload`` forcing the batched or the per-line memory path."""
    simulator = Simulator(config)
    simulator.engine.batched = batched
    return simulator.run(workload)


CONFIG_MAKERS = [
    pytest.param(lambda: baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2), id="mcm-baseline"),
    pytest.param(
        lambda: mcm_gpu_with_l15(
            8, remote_only=True, scheduler="distributed", n_gpms=4, sms_per_gpm=2
        ),
        id="mcm-l15",
    ),
    pytest.param(
        lambda: mcm_gpu_with_l15(8, remote_only=False, n_gpms=4, sms_per_gpm=2),
        id="mcm-l15-all",
    ),
    pytest.param(lambda: monolithic_gpu(n_sms=32), id="monolithic"),
    pytest.param(lambda: multi_gpu(optimized=False, sms_per_gpu=2), id="multi-gpu"),
]

WORKLOAD_MAKERS = [
    pytest.param(lambda: tiny_workload("pi-stream", "streaming"), id="streaming"),
    pytest.param(lambda: tiny_workload("pi-irr", "irregular"), id="irregular"),
    pytest.param(lambda: tiny_workload("pi-hot", "hotset"), id="hotset"),
    pytest.param(
        lambda: tiny_workload("pi-nostore", "streaming", write_fraction=0.0),
        id="no-stores",
    ),
]


class TestBatchedPerLineIdentity:
    @pytest.mark.parametrize("make_config", CONFIG_MAKERS)
    @pytest.mark.parametrize("make_workload", WORKLOAD_MAKERS)
    def test_results_identical_field_for_field(self, make_config, make_workload):
        batched = simulate_with_path(make_workload(), make_config(), batched=True)
        perline = simulate_with_path(make_workload(), make_config(), batched=False)
        batched_fields = asdict(batched)
        perline_fields = asdict(perline)
        assert batched_fields.keys() == perline_fields.keys()
        for name in batched_fields:
            assert batched_fields[name] == perline_fields[name], (
                f"field {name!r} differs: batched={batched_fields[name]!r} "
                f"per-line={perline_fields[name]!r}"
            )

    def test_general_loop_with_probe_matches_fast_loop(self):
        # Telemetry forces the general drain loop; results must not move.
        config = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2)
        fast = simulate_with_path(tiny_workload(), config, batched=True)
        simulator = Simulator(baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2))
        simulator.system.attach_telemetry(Telemetry())
        probed = simulator.run(tiny_workload())
        assert fast == probed

    def test_both_paths_satisfy_invariants(self):
        config = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2)
        for batched in (True, False):
            result = simulate_with_path(tiny_workload(), config, batched=batched)
            assert check_result(result, config=config) == []

    def test_perline_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PERLINE", "1")
        assert Simulator(monolithic_gpu(n_sms=32)).engine.batched is False
        monkeypatch.setenv("REPRO_SIM_PERLINE", "0")
        assert Simulator(monolithic_gpu(n_sms=32)).engine.batched is True
        monkeypatch.delenv("REPRO_SIM_PERLINE")
        assert Simulator(monolithic_gpu(n_sms=32)).engine.batched is True


class TestTraceMemo:
    def test_iterative_kernels_materialize_once(self):
        workload = tiny_workload("memo-w", "streaming", iterations=3)
        config = monolithic_gpu(n_sms=32)
        simulator = Simulator(config)
        simulator.run(workload)
        memo = workload._trace_memo
        n_ctas = workload.spec.n_ctas
        iterations = 3
        # Streaming is not kernel-variant: all three launches share the
        # seed-0 materialization, one per CTA.
        assert memo.materializations == n_ctas
        if simulator.engine.batched:
            # The engine's address-uniqueness probe walks every CTA once
            # before the first launch (materializing them) and re-touches
            # only CTA 0 on later kernels (its memoized verdict
            # short-circuits the scan), so reuse counts every launch of
            # every kernel plus one probe per later kernel.
            assert memo.reuses == iterations * n_ctas + (iterations - 1)
        else:
            # Per-line reference path (REPRO_SIM_PERLINE=1): no probe; the
            # first kernel's launches are the materializations, later
            # kernels reuse.
            assert memo.reuses == (iterations - 1) * n_ctas

    def test_reuse_across_runs_and_configs(self):
        workload = tiny_workload("memo-x", "streaming", iterations=2)
        Simulator(monolithic_gpu(n_sms=32)).run(workload)
        after_first = workload._trace_memo.materializations
        Simulator(monolithic_gpu(n_sms=32)).run(workload)
        Simulator(baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2)).run(workload)
        assert workload._trace_memo.materializations == after_first

    def test_kernel_variant_pattern_materializes_per_kernel(self):
        workload = tiny_workload("memo-v", "irregular", iterations=2)
        Simulator(monolithic_gpu(n_sms=32)).run(workload)
        # Irregular re-rolls its stream per kernel: distinct trace seeds.
        assert workload._trace_memo.materializations == 2 * workload.spec.n_ctas

    def test_memoized_results_identical_to_fresh(self):
        config = monolithic_gpu(n_sms=32)
        warm = tiny_workload("memo-id")
        first = Simulator(config).run(warm)
        second = Simulator(config).run(warm)  # memo-served traces
        cold = Simulator(config).run(tiny_workload("memo-id"))
        assert first == second == cold


class TestStoreAccounting:
    def test_every_store_is_write_hit_or_bypass(self):
        config = baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2)
        result = Simulator(config).run(tiny_workload())
        assert result.stores > 0
        assert result.l1.write_hits + result.l1.bypasses == result.stores
        # Regression: probe-miss stores used to touch no counter at all.
        assert result.l1.bypasses > 0
        assert result.l1.accesses == result.loads + result.l1.write_hits

    def test_touch_store_counters(self):
        cache = SetAssocCache(size_bytes=4 * 128, ways=4, name="t")
        assert cache.touch_store(7) is False
        assert cache.stats.bypasses == 1
        assert cache.stats.misses == 0  # a store probe-miss is not a lookup miss
        cache.access(7)
        assert cache.touch_store(7) is True
        assert cache.stats.hits == 1
        assert cache.stats.write_hits == 1

    def test_touch_store_refreshes_lru(self):
        cache = SetAssocCache(size_bytes=2 * 128, ways=2, name="t")  # 1 set
        cache.access(0)
        cache.access(1)
        cache.touch_store(0)  # line 0 becomes MRU
        cache.access(2)  # evicts LRU = line 1
        assert cache.probe(0)
        assert not cache.probe(1)

    def test_disabled_cache_store_is_bypass(self):
        cache = SetAssocCache(size_bytes=0, name="off")
        assert cache.touch_store(3) is False
        assert cache.stats.bypasses == 1
        assert cache.stats.accesses == 0


class TestLoadOnlyRates:
    def test_load_hit_rate_excludes_write_touches(self):
        stats = CacheStats(hits=10, misses=6, write_hits=4)
        assert stats.hit_rate == pytest.approx(10 / 16)
        assert stats.load_hit_rate == pytest.approx(6 / 12)
        assert stats.read_hits == 6
        assert stats.read_accesses == 12

    def test_simulated_l15_rate_is_load_only(self):
        # Pin the reported quantity: the L1.5 hit rate used for Figure 6/7
        # analysis must not be inflated by store touch-hits.
        config = mcm_gpu_with_l15(8, remote_only=False, n_gpms=4, sms_per_gpm=2)
        result = Simulator(config).run(tiny_workload("rate-w", "hotset"))
        stats = result.l15
        loads_seen = stats.accesses - stats.write_hits
        if loads_seen:
            expected = (stats.hits - stats.write_hits) / loads_seen
            assert stats.load_hit_rate == pytest.approx(expected)

    def test_telemetry_window_rates_are_load_only(self):
        simulator = Simulator(baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2))
        probe = Telemetry(window_cycles=256.0)
        simulator.system.attach_telemetry(probe)
        result = simulator.run(tiny_workload())
        # Window hit fields stay totals (they must sum to the result's
        # counters) while the derived rates subtract the write share.
        assert sum(w.l1_hits for w in probe.windows) == result.l1.hits
        assert sum(w.l1_write_hits for w in probe.windows) == result.l1.write_hits
        total = CacheStats(
            hits=sum(w.l1_hits for w in probe.windows),
            misses=sum(w.l1_misses for w in probe.windows),
            write_hits=sum(w.l1_write_hits for w in probe.windows),
        )
        assert probe.summary()["l1_hit_rate"] == pytest.approx(total.load_hit_rate)

    def test_merge_carries_write_split(self):
        merged = CacheStats(hits=2, write_hits=1, bypasses=3).merge(
            CacheStats(hits=4, write_hits=2, bypasses=1, write_misses=5)
        )
        assert merged.write_hits == 3
        assert merged.write_misses == 5
        assert merged.bypasses == 4
