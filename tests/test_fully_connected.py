"""Unit tests for the fully-connected topology extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.fully_connected import (
    FullyConnectedNetwork,
    iso_budget_link_bandwidth,
)
from repro.interconnect.link import REQUEST, RESPONSE


class TestTopology:
    def test_link_count(self):
        network = FullyConnectedNetwork(4, 768.0)
        assert len(network.links) == 12  # n*(n-1) directed links

    def test_single_hop_everywhere(self):
        network = FullyConnectedNetwork(6, 768.0)
        for src in range(6):
            for dst in range(6):
                expected = 0 if src == dst else 1
                assert network.hops_between(src, dst) == expected
                assert len(network.route(src, dst)) == expected

    def test_average_hops(self):
        assert FullyConnectedNetwork(4, 768.0).average_hops_uniform() == 1.0
        assert FullyConnectedNetwork(1, 768.0).average_hops_uniform() == 0.0

    def test_out_of_range(self):
        network = FullyConnectedNetwork(4, 768.0)
        with pytest.raises(ValueError, match="out of range"):
            network.transfer(0.0, 0, 4, 128)


class TestTiming:
    def test_transfer_single_hop_latency(self):
        network = FullyConnectedNetwork(4, 768.0, hop_latency_cycles=32.0)
        arrival = network.transfer(0.0, 0, 2, 128)
        # One hop even between "opposite" nodes: serialization + 32.
        assert 32.0 < arrival < 40.0

    def test_per_direction_bandwidth_is_half(self):
        network = FullyConnectedNetwork(4, 768.0)
        assert network.links[0].request_pipe.bytes_per_cycle == pytest.approx(384.0)

    def test_channels_independent(self):
        network = FullyConnectedNetwork(2, 2.0, hop_latency_cycles=0.0)
        network.transfer(0.0, 0, 1, 10_000, REQUEST)
        prompt = network.transfer(0.0, 0, 1, 1, RESPONSE)
        assert prompt < 100.0

    def test_accounting_and_reset(self):
        network = FullyConnectedNetwork(4, 768.0)
        network.transfer(0.0, 0, 1, 100)
        network.transfer(0.0, 2, 3, 50)
        assert network.total_link_bytes == 150
        network.reset()
        assert network.total_link_bytes == 0

    def test_self_transfer_free(self):
        network = FullyConnectedNetwork(4, 768.0)
        assert network.transfer(9.0, 1, 1, 4096) == 9.0


class TestIsoBudget:
    def test_four_nodes(self):
        # Ring node: 2 links x s -> escape 2s; all-to-all node: 3 links.
        assert iso_budget_link_bandwidth(768.0, 4) == pytest.approx(512.0)

    def test_two_nodes_degenerate(self):
        assert iso_budget_link_bandwidth(768.0, 2) == pytest.approx(1536.0)

    def test_rejects_single_node(self):
        with pytest.raises(ValueError, match="at least two"):
            iso_budget_link_bandwidth(768.0, 1)


@settings(max_examples=30, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=6),
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=512),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_fc_accounting_matches_bytes(n_nodes, transfers):
    """Property: total link bytes == sum of distinct-pair transfer sizes."""
    network = FullyConnectedNetwork(n_nodes, 768.0)
    expected = 0
    for src, dst, size in transfers:
        src %= n_nodes
        dst %= n_nodes
        network.transfer(0.0, src, dst, size)
        if src != dst:
            expected += size
    assert network.total_link_bytes == expected


class TestSystemIntegration:
    def test_gpu_system_builds_fc_topology(self):
        from dataclasses import replace

        from repro.core.gpu import build_system
        from repro.core.presets import baseline_mcm_gpu

        config = replace(
            baseline_mcm_gpu(name="fc"), topology="fully_connected"
        )
        system = build_system(config)
        assert isinstance(system.ring, FullyConnectedNetwork)

    def test_config_rejects_unknown_topology(self):
        from dataclasses import replace

        from repro.core.presets import baseline_mcm_gpu

        # "torus" graduated into the registry; use a name that stays fake.
        with pytest.raises(ValueError, match="topology"):
            replace(baseline_mcm_gpu(name="bad"), topology="hypercube")

    def test_fc_topology_simulates_end_to_end(self):
        # Regression: the specialized walker generator assumed a ring's
        # precomputed routes and crashed on all-to-all systems instead of
        # falling back to the generic walker.
        from dataclasses import replace

        from repro.core.presets import baseline_mcm_gpu
        from repro.sim.simulator import Simulator
        from repro.workloads.synthetic import (
            Category,
            SyntheticWorkload,
            WorkloadSpec,
        )

        workload = SyntheticWorkload(
            WorkloadSpec(
                name="fc-e2e",
                category=Category.M_INTENSIVE,
                pattern="streaming",
                n_ctas=16,
                groups_per_cta=2,
                records_per_group=2,
                accesses_per_record=2,
                kernel_iterations=1,
                footprint_bytes=256 * 1024,
            )
        )
        config = replace(
            baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, name="fc-e2e"),
            topology="fully_connected",
        )
        result = Simulator(config).run(workload)
        assert result.cycles > 0
        assert result.link_bytes > 0
