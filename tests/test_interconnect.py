"""Unit and property tests for links, the ring network, and the crossbar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.board import make_board_interconnect
from repro.interconnect.crossbar import GPMCrossbar
from repro.interconnect.link import REQUEST, RESPONSE, Link
from repro.interconnect.ring import RingNetwork


class TestLink:
    def test_traverse_adds_latency(self):
        link = Link(128.0, latency_cycles=32.0)
        arrival = link.traverse(0.0, 128)
        assert arrival == pytest.approx(33.0)

    def test_channels_are_independent(self):
        link = Link(1.0, latency_cycles=0.0)
        link.traverse(0.0, 1000, REQUEST)
        prompt = link.traverse(0.0, 1, RESPONSE)
        assert prompt < 100.0  # response channel unaffected by request backlog

    def test_bytes_sum_channels(self):
        link = Link(128.0)
        link.traverse(0.0, 100, REQUEST)
        link.traverse(0.0, 50, RESPONSE)
        assert link.bytes_transferred == 150

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            Link(100.0, latency_cycles=-5)


class TestRingTopology:
    def test_single_node_ring_has_no_links(self):
        ring = RingNetwork(1, 768.0)
        assert ring.links == []
        assert ring.transfer(5.0, 0, 0, 128) == 5.0
        assert ring.total_link_bytes == 0

    def test_hop_counts_4_nodes(self):
        ring = RingNetwork(4, 768.0)
        assert ring.hops_between(0, 0) == 0
        assert ring.hops_between(0, 1) == 1
        assert ring.hops_between(0, 2) == 2
        assert ring.hops_between(0, 3) == 1
        assert ring.hops_between(3, 0) == 1

    def test_average_hops_uniform_4_nodes(self):
        ring = RingNetwork(4, 768.0)
        assert ring.average_hops_uniform() == pytest.approx(4.0 / 3.0)

    def test_route_lengths_match_hops(self):
        ring = RingNetwork(6, 768.0)
        for src in range(6):
            for dst in range(6):
                assert len(ring.route(src, dst)) == ring.hops_between(src, dst)

    def test_rejects_out_of_range_nodes(self):
        ring = RingNetwork(4, 768.0)
        with pytest.raises(ValueError, match="out of range"):
            ring.hops_between(0, 4)


class TestRingTiming:
    def test_per_direction_bandwidth_is_half_link_setting(self):
        ring = RingNetwork(4, 768.0)
        assert ring.links[0].request_pipe.bytes_per_cycle == pytest.approx(384.0)

    def test_transfer_charges_every_hop(self):
        ring = RingNetwork(4, 768.0, hop_latency_cycles=32.0)
        arrival = ring.transfer(0.0, 0, 2, 128)
        # Two hops: 2 x (serialization + 32)
        assert arrival >= 64.0
        assert ring.total_link_bytes == 256  # 128 bytes on each of 2 links

    def test_same_node_transfer_free(self):
        ring = RingNetwork(4, 768.0)
        assert ring.transfer(7.0, 2, 2, 4096) == 7.0

    def test_reset_clears_traffic(self):
        ring = RingNetwork(4, 768.0)
        ring.transfer(0.0, 0, 1, 128)
        ring.reset()
        assert ring.total_link_bytes == 0


class TestCrossbar:
    def test_classify_counts(self):
        xbar = GPMCrossbar(gpm_id=1)
        assert xbar.classify(1) is True
        assert xbar.classify(0) is False
        assert xbar.classify(2) is False
        assert xbar.local_requests == 1
        assert xbar.remote_requests == 2
        assert xbar.locality_fraction == pytest.approx(1 / 3)

    def test_empty_locality_fraction(self):
        assert GPMCrossbar(0).locality_fraction == 0.0

    def test_reset(self):
        xbar = GPMCrossbar(0)
        xbar.classify(0)
        xbar.reset()
        assert xbar.total_requests == 0


class TestBoard:
    def test_board_is_two_node_ring(self):
        board = make_board_interconnect()
        assert board.n_nodes == 2
        assert board.hops_between(0, 1) == 1

    def test_board_bandwidth_split(self):
        board = make_board_interconnect(aggregate_gbps=256.0)
        assert board.links[0].request_pipe.bytes_per_cycle == pytest.approx(128.0)

    def test_board_rejects_single_gpu(self):
        with pytest.raises(ValueError, match="at least 2"):
            make_board_interconnect(n_gpus=1)


@settings(max_examples=50, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=8),
    src=st.integers(min_value=0, max_value=7),
    dst=st.integers(min_value=0, max_value=7),
)
def test_hops_symmetric_and_bounded(n_nodes, src, dst):
    """Property: ring hops are symmetric and at most floor(n/2)."""
    src %= n_nodes
    dst %= n_nodes
    ring = RingNetwork(n_nodes, 768.0)
    hops = ring.hops_between(src, dst)
    assert hops == ring.hops_between(dst, src)
    assert hops <= n_nodes // 2
    assert (hops == 0) == (src == dst)


@settings(max_examples=30, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=6),
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=512),
        ),
        min_size=1,
        max_size=50,
    ),
)
def test_ring_accounting_matches_hops(n_nodes, transfers):
    """Property: total link bytes == sum(bytes * hops) over all transfers."""
    ring = RingNetwork(n_nodes, 768.0)
    expected = 0
    for src, dst, size in transfers:
        src %= n_nodes
        dst %= n_nodes
        ring.transfer(0.0, src, dst, size)
        expected += size * ring.hops_between(src, dst)
    assert ring.total_link_bytes == expected


class TestAntipodalTieBreak:
    """Regression: opposite-corner routes on an even ring must spread over
    both directions (by source parity) instead of all going clockwise."""

    def test_even_ring_splits_antipodal_directions_by_source_parity(self):
        ring = RingNetwork(4, 768.0)
        # Even sources go clockwise: first hop of 0->2 is the 0->1 link.
        assert ring.route(0, 2)[0] is ring._links[0][0]
        # Odd sources go counter-clockwise: first hop of 1->3 is 1->0.
        assert ring.route(1, 3)[0] is ring._links[1][1]

    def test_route_lengths_still_minimal_after_tie_break(self):
        for n_nodes in (2, 4, 6, 8):
            ring = RingNetwork(n_nodes, 768.0)
            for src in range(n_nodes):
                for dst in range(n_nodes):
                    assert len(ring.route(src, dst)) == ring.hops_between(src, dst)

    def test_antipodal_traffic_from_two_sources_uses_both_directions(self):
        ring = RingNetwork(4, 768.0)
        ring.transfer(0.0, 0, 2, 128)
        ring.transfer(0.0, 1, 3, 128)
        clockwise_bytes = sum(pair[0].bytes_transferred for pair in ring._links)
        counter_bytes = sum(pair[1].bytes_transferred for pair in ring._links)
        assert clockwise_bytes > 0
        assert counter_bytes > 0

    def test_all_pairs_antipodal_traffic_balances_exactly(self):
        ring = RingNetwork(4, 768.0)
        for src in range(4):
            ring.transfer(0.0, src, (src + 2) % 4, 128)
        clockwise_bytes = sum(pair[0].bytes_transferred for pair in ring._links)
        counter_bytes = sum(pair[1].bytes_transferred for pair in ring._links)
        assert clockwise_bytes == counter_bytes

    def test_odd_ring_unaffected_by_tie_break(self):
        ring = RingNetwork(5, 768.0)
        for src in range(5):
            for dst in range(5):
                if src == dst:
                    continue
                clockwise_hops = (dst - src) % 5
                expect_clockwise = clockwise_hops < 5 - clockwise_hops
                first = ring.route(src, dst)[0]
                assert (first is ring._links[src][0]) == expect_clockwise
