"""Unit tests for speedup aggregation and report rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import format_series, format_table, paper_vs_measured
from repro.analysis.speedup import (
    average_bandwidth_tbps,
    bandwidth_reduction_factor,
    fraction_above,
    geomean,
    geomean_speedup,
    sorted_speedup_curve,
    speedups,
)
from repro.memory.cache import CacheStats
from repro.sim.result import SimResult


def result(name, cycles, link_bytes=1000):
    return SimResult(
        workload_name=name,
        system_name="sys",
        cycles=cycles,
        kernels=1,
        ctas=1,
        records=1,
        loads=1,
        stores=0,
        remote_loads=0,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=link_bytes,
        page_local=0,
        page_remote=0,
    )


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        values = [0.5, 1.0, 4.0]
        assert geomean(values) < sum(values) / len(values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, -2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, math.nan])

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([math.inf, 2.0])

    def test_error_names_offending_values(self):
        with pytest.raises(ValueError, match=r"\[0\.0\]"):
            geomean([1.0, 0.0, 2.0])


class TestSpeedups:
    def test_per_workload(self):
        results = {"a": result("a", 50.0), "b": result("b", 200.0)}
        baselines = {"a": result("a", 100.0), "b": result("b", 100.0)}
        assert speedups(results, baselines) == {"a": pytest.approx(2.0), "b": pytest.approx(0.5)}

    def test_missing_baseline_is_error(self):
        with pytest.raises(KeyError, match="no baseline"):
            speedups({"a": result("a", 1.0)}, {})

    def test_geomean_speedup(self):
        results = {"a": result("a", 50.0), "b": result("b", 200.0)}
        baselines = {"a": result("a", 100.0), "b": result("b", 100.0)}
        assert geomean_speedup(results, baselines) == pytest.approx(1.0)


class TestBandwidthAggregates:
    def test_average_tbps(self):
        results = {
            "a": result("a", 1000.0, link_bytes=1_000_000),
            "b": result("b", 1000.0, link_bytes=3_000_000),
        }
        # 1e6 B / 1e3 cyc = 1000 GB/s = 1 TB/s; likewise 3 TB/s -> mean 2.
        assert average_bandwidth_tbps(results) == pytest.approx(2.0)

    def test_reduction_factor(self):
        base = {"a": result("a", 1.0, link_bytes=5000)}
        opt = {"a": result("a", 1.0, link_bytes=1000)}
        assert bandwidth_reduction_factor(base, opt) == pytest.approx(5.0)

    def test_reduction_factor_zero_optimized(self):
        base = {"a": result("a", 1.0, link_bytes=5000)}
        opt = {"a": result("a", 1.0, link_bytes=0)}
        assert bandwidth_reduction_factor(base, opt) == math.inf


class TestCurveHelpers:
    def test_sorted_curve(self):
        assert sorted_speedup_curve({"a": 2.0, "b": 0.5, "c": 1.0}) == [0.5, 1.0, 2.0]

    def test_fraction_above(self):
        assert fraction_above({"a": 2.0, "b": 0.5, "c": 1.5}) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            fraction_above({})


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["x", 1.5], ["longer", 20.0]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert all(len(line) <= 80 for line in lines)

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_empty_rows(self):
        table = format_table(["a", "bb"], [])
        lines = table.splitlines()
        assert lines[0].rstrip() == "a  bb"
        assert len(lines) == 2  # header + rule, no body

    def test_format_table_float_formatting(self):
        table = format_table(
            ["v"], [[0.0], [1.2345], [12.345], [1234.5]]
        )
        body = table.splitlines()[2:]
        assert body[0].strip() == "0"
        assert body[1].strip() == "1.234"  # three decimals under 10
        assert body[2].strip() == "12.3"  # one decimal from 10 up
        assert body[3].strip() == "1,234"  # thousands separator from 1000 up

    def test_format_table_pads_to_widest_cell(self):
        table = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        header, rule, *_ = table.splitlines()
        assert len(header) == len(rule) == len("a-much-longer-cell")

    def test_format_series_chunks(self):
        text = format_series("s", list(range(25)), per_line=10)
        assert "(25 points)" in text
        assert len(text.splitlines()) == 4

    def test_paper_vs_measured(self):
        text = paper_vs_measured([["speedup", "1.228", "1.24"]])
        assert "paper" in text
        assert "measured" in text


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
def test_geomean_bounded_by_extremes(values):
    """Property: min <= geomean <= max."""
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_geomean_of_inverses_is_inverse(values):
    """Property: geomean(1/x) == 1/geomean(x) — why geomean suits ratios."""
    inverse = geomean([1.0 / value for value in values])
    assert inverse == pytest.approx(1.0 / geomean(values), rel=1e-6)
