"""Integration tests: the paper's qualitative mechanisms on small configs.

These exercise end-to-end simulations (smaller machines / shrunken
workloads, so they stay fast) and assert the *mechanisms* of the paper:
NUMA sensitivity, L1.5 traffic capture, distributed-scheduling locality,
first-touch localization, and the cross-kernel binding story of Figure 12.
"""

import pytest

from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, monolithic_gpu
from repro.experiments.common import run_one
from repro.sim.simulator import simulate
from repro.workloads.suite import spec_by_name
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def workload(name, factor=0.25):
    return SyntheticWorkload(spec_by_name(name).scaled_down(factor))


def custom(name="custom", **overrides):
    base = dict(
        name=name,
        category=Category.M_INTENSIVE,
        pattern="streaming",
        n_ctas=384,
        groups_per_cta=2,
        records_per_group=4,
        accesses_per_record=4,
        write_fraction=0.2,
        compute_per_record=4.0,
        kernel_iterations=2,
        footprint_bytes=2 << 20,
    )
    base.update(overrides)
    return SyntheticWorkload(WorkloadSpec(**base))


class TestNUMASensitivity:
    def test_narrow_links_slow_memory_intensive_work(self):
        wl = custom()
        wide = simulate(wl, baseline_mcm_gpu(link_bandwidth=6144.0))
        narrow = simulate(wl, baseline_mcm_gpu(link_bandwidth=384.0))
        assert narrow.cycles > wide.cycles * 1.3

    def test_interleave_produces_three_quarters_remote(self):
        result = simulate(custom(), baseline_mcm_gpu())
        assert result.remote_access_fraction == pytest.approx(0.75, abs=0.05)

    def test_monolithic_fabric_traffic_is_chip_tier(self):
        """Cross-slice traffic on a die exists but is cheap and unthrottled."""
        wl = custom()
        mono = simulate(wl, monolithic_gpu(256))
        mcm = simulate(wl, baseline_mcm_gpu())
        assert mono.link_tier == "chip"
        # Same slice structure, so similar cross-slice volume...
        assert mono.link_bytes > 0
        # ...but the fabric doesn't throttle: the die is faster.
        assert mono.cycles < mcm.cycles
        # And its interconnect energy is an order of magnitude cheaper.
        assert mono.energy.inter_module_joules < mcm.energy.inter_module_joules / 3


class TestL15Mechanism:
    def test_l15_reduces_link_traffic_for_hot_workload(self):
        wl = custom(pattern="hotset", pattern_params=(("hot_fraction", 0.6), ("hot_lines", 256)))
        without = simulate(wl, baseline_mcm_gpu())
        with_l15 = simulate(wl, mcm_gpu_with_l15(16, remote_only=True))
        assert with_l15.link_bytes < without.link_bytes * 0.9
        assert with_l15.l15.hit_rate > 0.3

    def test_l15_useless_for_pure_streaming(self):
        wl = custom(pattern="streaming")
        with_l15 = simulate(wl, mcm_gpu_with_l15(16, remote_only=True))
        assert with_l15.l15.hit_rate < 0.2

    def test_remote_only_policy_keeps_local_lines_out(self):
        result = simulate(custom(), mcm_gpu_with_l15(16, remote_only=True))
        # All L1.5 lookups came from remote requests: lookups < all accesses.
        assert result.l15.accesses <= result.remote_loads + result.remote_stores


class TestDistributedSchedulingMechanism:
    def test_ds_captures_band_sharing_in_l15(self):
        wl = custom(
            pattern="banded",
            pattern_params=(
                ("band_fraction", 0.4),
                ("band_width_ctas", 96),
                ("band_lines", 128),
            ),
            footprint_bytes=4 << 20,
        )
        central = simulate(wl, mcm_gpu_with_l15(16, remote_only=True))
        distributed = simulate(
            wl, mcm_gpu_with_l15(16, remote_only=True, scheduler="distributed")
        )
        assert distributed.l15.hit_rate > central.l15.hit_rate
        assert distributed.link_bytes < central.link_bytes


class TestFirstTouchMechanism:
    def test_ft_with_ds_localizes_private_chunks(self):
        wl = custom(pattern="streaming")
        config = mcm_gpu_with_l15(
            8, remote_only=True, scheduler="distributed", placement="first_touch"
        )
        result = simulate(wl, config)
        assert result.remote_access_fraction < 0.15
        assert result.link_bytes < simulate(wl, baseline_mcm_gpu()).link_bytes / 3

    def test_ft_without_ds_loses_locality_across_kernels(self):
        """Figure 12's contrapositive: the centralized scheduler re-binds
        CTAs to different GPMs each launch, so pages placed in kernel 1 are
        remote in kernel 2."""
        from dataclasses import replace

        wl = custom(pattern="streaming", kernel_iterations=3)
        ft_central = replace(baseline_mcm_gpu(name="ft-central"), placement="first_touch")
        ft_distributed = replace(
            baseline_mcm_gpu(name="ft-ds"),
            placement="first_touch",
            scheduler="distributed",
        )
        central = simulate(wl, ft_central)
        distributed = simulate(wl, ft_distributed)
        assert central.remote_access_fraction > distributed.remote_access_fraction + 0.2


class TestScalingMechanism:
    def test_high_parallelism_scales_with_sms(self):
        wl = custom(n_ctas=1024, kernel_iterations=1)
        small = simulate(wl, monolithic_gpu(32))
        big = simulate(wl, monolithic_gpu(256))
        assert small.cycles / big.cycles > 3.0

    def test_limited_parallelism_plateaus(self):
        wl = custom(
            name="few-ctas", n_ctas=64, kernel_iterations=1, compute_per_record=64.0
        )
        mid = simulate(wl, monolithic_gpu(128))
        big = simulate(wl, monolithic_gpu(256))
        assert big.cycles > mid.cycles * 0.75  # barely any gain


class TestWriteTrafficMechanism:
    def test_write_heavy_workload_generates_writebacks(self):
        wl = custom(write_fraction=0.5, footprint_bytes=4 << 20)
        result = simulate(wl, baseline_mcm_gpu())
        assert result.dram_bytes_written > 0
        assert result.l2.writebacks > 0

    def test_kernel_waits_for_store_drain(self):
        """Buffered stores must be inside the measured makespan."""
        wl = custom(write_fraction=0.5, compute_per_record=0.5, kernel_iterations=1)
        result = simulate(wl, baseline_mcm_gpu())
        # DRAM bandwidth within physical limits proves drain accounting.
        assert result.dram_bandwidth <= 3072.0 * 1.01
