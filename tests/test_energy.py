"""Unit tests for the Table 2 energy model."""

import pytest

from repro.core.energy import (
    DRAM_PJ_PER_BIT,
    ENERGY_PJ_PER_BIT,
    IntegrationTier,
    breakdown_from_traffic,
    dram_energy_joules,
    energy_joules,
)


class TestConstants:
    def test_paper_values(self):
        assert ENERGY_PJ_PER_BIT[IntegrationTier.CHIP] == pytest.approx(0.080)
        assert ENERGY_PJ_PER_BIT[IntegrationTier.PACKAGE] == pytest.approx(0.5)
        assert ENERGY_PJ_PER_BIT[IntegrationTier.BOARD] == pytest.approx(10.0)
        assert ENERGY_PJ_PER_BIT[IntegrationTier.SYSTEM] == pytest.approx(250.0)

    def test_board_vs_package_ratio(self):
        """Section 6.2: 0.5 pJ/b on package vs 10 pJ/b on board (20x)."""
        ratio = (
            ENERGY_PJ_PER_BIT[IntegrationTier.BOARD]
            / ENERGY_PJ_PER_BIT[IntegrationTier.PACKAGE]
        )
        assert ratio == pytest.approx(20.0)


class TestEnergyMath:
    def test_energy_joules(self):
        # 1 GB at 0.5 pJ/bit = 1e9 * 8 * 0.5e-12 J = 4 mJ
        assert energy_joules(1e9, IntegrationTier.PACKAGE) == pytest.approx(4e-3)

    def test_dram_energy(self):
        assert dram_energy_joules(1e9) == pytest.approx(1e9 * 8 * DRAM_PJ_PER_BIT * 1e-12)


class TestBreakdown:
    def test_package_tier(self):
        breakdown = breakdown_from_traffic(
            on_chip_bytes=1e9,
            inter_module_bytes=1e9,
            dram_bytes=0,
            inter_module_tier=IntegrationTier.PACKAGE,
        )
        # Package links cost 0.5/0.08 = 6.25x on-chip wires per byte.
        assert breakdown.inter_module_joules / breakdown.on_chip_joules == pytest.approx(6.25)

    def test_board_tier_is_20x_package(self):
        package = breakdown_from_traffic(0, 1e9, 0, IntegrationTier.PACKAGE)
        board = breakdown_from_traffic(0, 1e9, 0, IntegrationTier.BOARD)
        assert board.inter_module_joules / package.inter_module_joules == pytest.approx(20.0)

    def test_total_sums(self):
        breakdown = breakdown_from_traffic(1e6, 2e6, 3e6)
        assert breakdown.total_joules == pytest.approx(
            breakdown.on_chip_joules + breakdown.inter_module_joules + breakdown.dram_joules
        )

    def test_as_dict(self):
        data = breakdown_from_traffic(1e6, 2e6, 3e6).as_dict()
        assert data["inter_module_tier"] == "package"
        assert data["total_joules"] > 0
