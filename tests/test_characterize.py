"""Unit tests for static workload characterization."""

import pytest

from repro.workloads.characterize import profile_spec, profile_workload
from repro.workloads.suite import spec_by_name
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def spec(**overrides):
    base = dict(
        name="prof",
        category=Category.M_INTENSIVE,
        pattern="streaming",
        n_ctas=32,
        groups_per_cta=2,
        records_per_group=4,
        accesses_per_record=4,
        write_fraction=0.25,
        compute_per_record=8.0,
        kernel_iterations=1,
        footprint_bytes=512 * 1024,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestProfileBasics:
    def test_counts_all_sampled_accesses(self):
        profile = profile_spec(spec(), max_ctas=32)
        assert profile.sampled_ctas == 32
        assert profile.total_accesses == 32 * 2 * 4 * 4

    def test_store_fraction_matches_spec(self):
        profile = profile_spec(spec(write_fraction=0.25))
        assert profile.store_fraction == pytest.approx(0.25, abs=0.02)

    def test_compute_per_access(self):
        profile = profile_spec(spec(compute_per_record=8.0, accesses_per_record=4))
        assert profile.compute_per_access == pytest.approx(2.0)
        assert profile.memory_intensity == pytest.approx(0.5)

    def test_sampling_caps_cta_count(self):
        profile = profile_spec(spec(n_ctas=32), max_ctas=8)
        assert profile.sampled_ctas == 8


class TestLocalityMetrics:
    def test_streaming_has_no_sharing(self):
        profile = profile_spec(spec(pattern="streaming"), max_ctas=16)
        assert profile.shared_line_fraction < 0.05

    def test_hotset_shares_and_concentrates(self):
        hot = profile_spec(
            spec(
                pattern="hotset",
                pattern_params=(("hot_fraction", 0.6), ("hot_lines", 64)),
            ),
            max_ctas=16,
        )
        cold = profile_spec(spec(pattern="streaming"), max_ctas=16)
        assert hot.shared_line_fraction > 0.05
        assert hot.hot_concentration > cold.hot_concentration

    def test_footprint_coverage_bounded(self):
        profile = profile_spec(spec())
        assert 0.0 < profile.footprint_coverage <= 1.0


class TestSuiteClassConsistency:
    def test_m_intensive_denser_than_c_intensive(self):
        """Suite classes must reflect their paper definitions."""
        m = profile_spec(spec_by_name("Stream"), max_ctas=16)
        c = profile_spec(spec_by_name("Backprop"), max_ctas=16)
        assert m.memory_intensity > c.memory_intensity * 3

    def test_kmeans_is_hot_concentrated(self):
        kmeans = profile_spec(spec_by_name("Kmeans"), max_ctas=16)
        stream = profile_spec(spec_by_name("Stream"), max_ctas=16)
        assert kmeans.hot_concentration > stream.hot_concentration

    def test_banded_solver_shares_lines(self):
        comd = profile_spec(spec_by_name("CoMD"), max_ctas=32)
        assert comd.shared_line_fraction > 0.0
