"""Tests for the external trace ingestion subsystem (``repro.ingest``)."""

import gzip
import json
import pickle

import numpy as np
import pytest

from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, optimized_mcm_gpu
from repro.experiments.common import ResultCache, run_one
from repro.ingest import (
    CTASlice,
    IngestError,
    IngestedWorkload,
    KernelRef,
    SchemaError,
    TraceDocument,
    document_digest,
    export_workload,
    load_document,
    load_workload,
    reingest,
    save_document,
    validate_document,
    verify_roundtrip,
)
from repro.serve.wire import WireError, workload_from_wire, workload_to_wire
from repro.sim.simulator import simulate
from repro.workloads.suite import all_specs, ml_specs, spec_by_name
from repro.workloads.synthetic import SyntheticWorkload


def tiny_document(name="tiny", footprint=64, meta=None):
    """A minimal valid two-kernel document for schema tests."""
    addrs = np.arange(8, dtype=np.int64).reshape(2, 4) % footprint
    entry = CTASlice(addrs=addrs, spans=((0, 2, 4),), compute_cycles=10.0)
    return TraceDocument(
        name=name,
        footprint_lines=footprint,
        trace_sets=[[entry, entry]],
        kernels=[
            KernelRef(label="k0", n_ctas=2, groups_per_cta=2, trace=0),
            KernelRef(label="k1", n_ctas=2, groups_per_cta=2, trace=0),
        ],
        meta=dict(meta or {}),
    )


def exported(name="Stream", scale=0.0625):
    """Export a shrunken built-in workload to a TraceDocument."""
    workload = SyntheticWorkload(spec_by_name(name).scaled_down(scale))
    return workload, export_workload(workload)


class TestDigest:
    def test_digest_is_stable(self):
        assert document_digest(tiny_document()) == document_digest(tiny_document())

    def test_meta_is_excluded(self):
        a = tiny_document(meta={})
        b = tiny_document(meta={"source": "somewhere else entirely"})
        assert document_digest(a) == document_digest(b)

    def test_content_changes_digest(self):
        doc = tiny_document()
        entry = doc.trace_sets[0][0]
        bumped = CTASlice(
            addrs=(entry.addrs + 1) % doc.footprint_lines,
            spans=entry.spans,
            compute_cycles=entry.compute_cycles,
        )
        edited = TraceDocument(
            name=doc.name,
            footprint_lines=doc.footprint_lines,
            trace_sets=[[bumped, doc.trace_sets[0][1]]],
            kernels=doc.kernels,
        )
        assert document_digest(edited) != document_digest(doc)


class TestValidation:
    def test_valid_document_passes(self):
        validate_document(tiny_document())

    def test_rejects_negative_addresses(self):
        doc = tiny_document()
        doc.trace_sets[0][0].addrs[0, 0] = -1
        with pytest.raises(SchemaError, match="negative"):
            validate_document(doc)

    def test_rejects_out_of_footprint_addresses(self):
        doc = tiny_document(footprint=64)
        doc.trace_sets[0][0].addrs[0, 0] = 64
        with pytest.raises(SchemaError, match="footprint"):
            validate_document(doc)

    def test_rejects_bad_spans(self):
        entry = CTASlice(
            addrs=np.arange(8, dtype=np.int64).reshape(2, 4),
            spans=((0, 1, 1),),  # does not tile the 4 columns
            compute_cycles=1.0,
        )
        doc = tiny_document()
        broken = TraceDocument(
            name=doc.name,
            footprint_lines=doc.footprint_lines,
            trace_sets=[[entry, entry]],
            kernels=doc.kernels,
        )
        with pytest.raises(SchemaError):
            validate_document(broken)

    def test_rejects_kernel_referencing_missing_set(self):
        doc = tiny_document()
        broken = TraceDocument(
            name=doc.name,
            footprint_lines=doc.footprint_lines,
            trace_sets=doc.trace_sets,
            kernels=[KernelRef(label="k", n_ctas=2, groups_per_cta=2, trace=5)],
        )
        with pytest.raises(SchemaError):
            validate_document(broken)


class TestSerializationRoundTrips:
    @pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz", ".npz"])
    def test_round_trip_preserves_digest(self, tmp_path, suffix):
        _, doc = exported()
        path = tmp_path / f"trace{suffix}"
        save_document(doc, path)
        assert document_digest(load_document(path)) == document_digest(doc)

    def test_jsonl_and_npz_agree(self, tmp_path):
        _, doc = exported("BFS")
        save_document(doc, tmp_path / "t.jsonl")
        save_document(doc, tmp_path / "t.npz")
        a = load_document(tmp_path / "t.jsonl")
        b = load_document(tmp_path / "t.npz")
        assert document_digest(a) == document_digest(b)

    def test_unknown_suffix_rejected(self, tmp_path):
        _, doc = exported()
        with pytest.raises(IngestError, match="suffix"):
            save_document(doc, tmp_path / "trace.csv")
        with pytest.raises(IngestError, match="suffix"):
            load_document(tmp_path / "trace.csv")


class TestSchemaRejection:
    def write_tiny(self, tmp_path, mutate):
        """Write the tiny doc as JSONL, apply ``mutate`` to its lines."""
        path = tmp_path / "t.jsonl"
        save_document(tiny_document(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(mutate(lines)) + "\n")
        return path

    def test_wrong_format_marker(self, tmp_path):
        def mutate(lines):
            header = json.loads(lines[0])
            header["header"]["format"] = "not-a-trace"
            return [json.dumps(header)] + lines[1:]

        with pytest.raises(SchemaError, match="not a repro-trace file"):
            load_document(self.write_tiny(tmp_path, mutate))

    def test_unsupported_version(self, tmp_path):
        def mutate(lines):
            header = json.loads(lines[0])
            header["header"]["version"] = 99
            return [json.dumps(header)] + lines[1:]

        with pytest.raises(SchemaError, match="version"):
            load_document(self.write_tiny(tmp_path, mutate))

    def test_missing_end_line_is_torn(self, tmp_path):
        path = self.write_tiny(tmp_path, lambda lines: lines[:-1])
        with pytest.raises(SchemaError, match="torn or truncated"):
            load_document(path)

    def test_wrong_end_counts_are_torn(self, tmp_path):
        # Drop a CTA line but keep the end line: counts disagree.
        path = self.write_tiny(tmp_path, lambda lines: [lines[0]] + lines[2:])
        with pytest.raises(SchemaError, match="torn or truncated"):
            load_document(path)

    def test_invalid_json_mid_file(self, tmp_path):
        path = self.write_tiny(tmp_path, lambda lines: lines[:1] + ["{half a rec"] + lines[1:])
        with pytest.raises(SchemaError, match="truncated"):
            load_document(path)

    def test_negative_address_in_file(self, tmp_path):
        def mutate(lines):
            out = []
            for line in lines:
                record = json.loads(line)
                if "addrs" in record:
                    record["addrs"][0][0] = -7
                out.append(json.dumps(record))
            return out

        with pytest.raises(SchemaError, match="negative"):
            load_document(self.write_tiny(tmp_path, mutate))

    def test_truncated_gzip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_document(tiny_document(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((IngestError, SchemaError)):
            load_document(path)

    def test_npz_index_out_of_bounds(self, tmp_path):
        path = tmp_path / "t.npz"
        save_document(tiny_document(), path)
        with np.load(path) as bundle:
            arrays = {key: bundle[key] for key in bundle.files}
        arrays["index"] = arrays["index"].copy()
        arrays["index"][0, 3] = 10 ** 9  # addr_offset far past the array
        np.savez_compressed(path, **arrays)
        with pytest.raises(SchemaError, match="torn"):
            load_document(path)

    def test_npz_missing_array(self, tmp_path):
        path = tmp_path / "t.npz"
        save_document(tiny_document(), path)
        with np.load(path) as bundle:
            arrays = {key: bundle[key] for key in bundle.files if key != "spans"}
        np.savez_compressed(path, **arrays)
        with pytest.raises(SchemaError, match="spans"):
            load_document(path)


class TestIngestedWorkload:
    def test_digest_embeds_content_hash(self):
        workload = IngestedWorkload(tiny_document())
        assert workload.digest() == f"ingest:tiny|v1|sha256:{workload.content_hash}"

    def test_editing_trace_changes_digest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_document(tiny_document(), path)
        before = load_workload(path).digest()
        # Edit one address in place (a "hand-tweaked trace file").
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["addrs"][0][0] = (record["addrs"][0][0] + 1) % 64
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        assert load_workload(path).digest() != before

    def test_source_path_recorded(self, tmp_path):
        path = tmp_path / "t.npz"
        save_document(tiny_document(), path)
        assert load_workload(path).source_path == str(path)

    def test_pickle_round_trip(self):
        workload, doc = exported()
        twin = IngestedWorkload(doc)
        revived = pickle.loads(pickle.dumps(twin))
        assert revived.digest() == twin.digest()
        assert revived._traces == {}

    def test_reingested_traces_match_source(self):
        workload, _ = exported("XSBench")
        twin = reingest(workload)
        originals = list(workload.kernels())
        revived = list(twin.kernels())
        assert len(originals) == len(revived)
        for original, copy in zip(originals, revived):
            assert original.n_ctas == copy.n_ctas
            assert original.groups_per_cta == copy.groups_per_cta
            for cta in range(min(original.n_ctas, 4)):
                a = original.trace_fn(cta)
                b = copy.trace_fn(cta)
                assert np.array_equal(a.addrs, b.addrs)
                assert list(a.spans) == list(b.spans)
                assert a.compute_cycles == b.compute_cycles


class TestBitIdentity:
    CONFIG_FACTORIES = [
        baseline_mcm_gpu,
        lambda: mcm_gpu_with_l15(16, remote_only=True),
        optimized_mcm_gpu,
    ]
    WORKLOADS = ["Stream", "BFS", "XSBench", "GEMM-Fwd", "DLRM-Embed"]

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_export_reingest_simulates_identically(self, name):
        workload = SyntheticWorkload(spec_by_name(name).scaled_down(0.0625))
        for factory in self.CONFIG_FACTORIES:
            identical, original, twin = verify_roundtrip(workload, factory())
            diff = {k for k in original if original[k] != twin.get(k)}
            assert identical, f"{name} on {factory().name}: {sorted(diff)}"

    def test_every_builtin_spec_round_trips(self):
        """Acceptance: every built-in synthetic workload survives the trip.

        Trace-level equality (addresses, spans, compute) is checked for
        all 2017 + ML specs at tiny scale; full SimResult identity is
        covered per-config by the parametrized test above and by the CI
        selftest — trace equality is what feeds the deterministic engine,
        so equal traces on a fixed config imply equal results.
        """
        for spec in all_specs() + ml_specs():
            workload = SyntheticWorkload(spec.scaled_down(0.03))
            twin = reingest(workload)
            for original, copy in zip(workload.kernels(), twin.kernels()):
                trace_a = original.trace_fn(0)
                trace_b = copy.trace_fn(0)
                assert np.array_equal(trace_a.addrs, trace_b.addrs), spec.name
                assert list(trace_a.spans) == list(trace_b.spans), spec.name


class TestCacheFlow:
    def test_cache_key_uses_content_hash(self, tmp_path):
        workload, doc = exported()
        twin = IngestedWorkload(doc)
        cache = ResultCache(tmp_path / "cache")
        config = baseline_mcm_gpu()
        first = run_one(twin, config, cache=cache)
        again = run_one(twin, config, cache=cache)
        assert again.cycles == first.cycles
        assert cache.get(twin.digest(), config.digest()) is not None

    def test_edited_trace_misses_cache(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_document(tiny_document(), path)
        cache = ResultCache(tmp_path / "cache")
        config = baseline_mcm_gpu()
        run_one(load_workload(path), config, cache=cache)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["compute_cycles"] = 999.0
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        edited = load_workload(path)
        assert cache.get(edited.digest(), config.digest()) is None


class TestWire:
    def test_trace_reference_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_document(tiny_document(), path)
        workload = load_workload(path)
        wire = workload_to_wire(workload)
        assert wire["trace"]["digest"] == workload.content_hash
        revived = workload_from_wire(wire)
        assert revived.digest() == workload.digest()

    def test_digest_mismatch_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_document(tiny_document(), path)
        wire = {"trace": {"path": str(path), "digest": "0" * 16}}
        with pytest.raises(WireError, match="does not"):
            workload_from_wire(wire)

    def test_unloaded_workload_has_no_wire_form(self):
        workload = IngestedWorkload(tiny_document())
        with pytest.raises(WireError, match="source path"):
            workload_to_wire(workload)


class TestSimulateIngested:
    def test_ingested_workload_runs_and_counts_records(self, tmp_path):
        path = tmp_path / "t.npz"
        save_document(tiny_document(), path)
        result = simulate(load_workload(path), baseline_mcm_gpu())
        assert result.records == 8  # 2 kernels x 2 CTAs x 2 groups x 1 span
        assert result.workload_digest.startswith("ingest:tiny|v1|")
