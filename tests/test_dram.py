"""Unit tests for the DRAM partition model."""

import pytest

from repro.memory.dram import DRAMPartition


class TestValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            DRAMPartition(768.0, latency_cycles=-1)


class TestTiming:
    def test_read_includes_latency_and_serialization(self):
        dram = DRAMPartition(128.0, latency_cycles=100.0, line_bytes=128)
        finish = dram.read_line(0.0)
        assert finish == pytest.approx(101.0)

    def test_write_consumes_bandwidth_without_latency_wait(self):
        dram = DRAMPartition(128.0, latency_cycles=100.0, line_bytes=128)
        finish = dram.write_line(0.0)
        assert finish == pytest.approx(1.0)

    def test_reads_queue_under_contention(self):
        dram = DRAMPartition(1.0, latency_cycles=0.0, line_bytes=128)
        first = dram.read_line(0.0)
        second = dram.read_line(0.0)
        assert second >= first + 100.0  # 128 bytes at 1 B/cyc each


class TestAccounting:
    def test_byte_counters(self):
        dram = DRAMPartition(768.0)
        dram.read_line(0.0)
        dram.read_line(0.0)
        dram.write_line(0.0)
        assert dram.reads == 2
        assert dram.writes == 1
        assert dram.bytes_read == 256
        assert dram.bytes_written == 128
        assert dram.total_bytes == 384

    def test_reset(self):
        dram = DRAMPartition(768.0)
        dram.read_line(0.0)
        dram.reset()
        assert dram.reads == 0
        assert dram.total_bytes == 0
        assert dram.pipe.busy_until == 0.0
