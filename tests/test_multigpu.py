"""Unit tests for the multi-GPU study helpers."""

import pytest

from repro.memory.cache import CacheStats
from repro.multigpu.system import (
    aggregate_energy_advantage,
    compare_efficiency,
    comparison_systems,
    systems_are_equally_equipped,
)
from repro.sim.result import SimResult


def result(name, cycles, link_bytes, tier):
    return SimResult(
        workload_name=name,
        system_name="sys",
        cycles=cycles,
        kernels=1,
        ctas=1,
        records=1,
        loads=1,
        stores=0,
        remote_loads=0,
        remote_stores=0,
        l1=CacheStats(),
        l15=CacheStats(),
        l2=CacheStats(),
        dram_bytes_read=0,
        dram_bytes_written=0,
        link_bytes=link_bytes,
        page_local=0,
        page_remote=0,
        link_tier=tier,
    )


class TestComparisonSystems:
    def test_five_machines(self):
        labels = [label for label, _ in comparison_systems()]
        assert labels == [
            "multi-gpu-baseline",
            "multi-gpu-optimized",
            "mcm-optimized",
            "mcm-6tbs",
            "monolithic-256",
        ]

    def test_equally_equipped(self):
        """Section 6: same SM count and DRAM bandwidth everywhere."""
        assert systems_are_equally_equipped()


class TestEfficiency:
    def test_energy_advantage_reflects_tier_cost(self):
        mcm = result("wl", 100.0, 1000, "package")
        multi = result("wl", 150.0, 1000, "board")
        comparison = compare_efficiency(mcm, multi)
        # Same bytes, but board links cost 20x per bit (Table 2).
        assert comparison.energy_advantage == pytest.approx(20.0)
        assert comparison.speedup == pytest.approx(1.5)

    def test_rejects_workload_mismatch(self):
        with pytest.raises(ValueError, match="different workloads"):
            compare_efficiency(
                result("a", 1.0, 1, "package"), result("b", 1.0, 1, "board")
            )

    def test_rejects_swapped_tiers(self):
        with pytest.raises(ValueError, match="package-integrated"):
            compare_efficiency(
                result("a", 1.0, 1, "board"), result("a", 1.0, 1, "board")
            )

    def test_aggregate_energy_advantage(self):
        mcm = {"a": result("a", 1.0, 1000, "package")}
        multi = {"a": result("a", 1.0, 500, "board")}
        # 500 board bytes at 10 pJ/b vs 1000 package bytes at 0.5 pJ/b -> 10x.
        assert aggregate_energy_advantage(mcm, multi) == pytest.approx(10.0)

    def test_zero_mcm_traffic_is_infinite_advantage(self):
        mcm = {"a": result("a", 1.0, 0, "package")}
        multi = {"a": result("a", 1.0, 500, "board")}
        assert aggregate_energy_advantage(mcm, multi) == float("inf")
