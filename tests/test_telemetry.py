"""Tests for the telemetry/profiling subsystem.

The two contracts under test:

1. **Bit-identity** — attaching (or not attaching) a probe never changes a
   ``SimResult``: cycles and every counter match exactly, on the serial
   and the parallel suite paths, with profiling on or off.
2. **Usefulness** — an attached probe records a non-empty windowed
   timeline, per-kernel phases, and pipe occupancy, and the exporters emit
   schema-valid output.
"""

import json

import pytest

from repro.core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from repro.experiments.common import _run_suite_serial, run_suites
from repro.parallel.metrics import SuiteMetrics
from repro.parallel.runner import profiling_enabled, run_suite_parallel
from repro.sim.simulator import Simulator, simulate
from repro.telemetry import (
    Telemetry,
    chrome_trace_dict,
    text_report,
    timeline_dict,
    write_chrome_trace,
    write_json_timeline,
)
from repro.workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


def tiny_workload(name="t-w", pattern="streaming", write_fraction=0.2):
    return SyntheticWorkload(
        WorkloadSpec(
            name=name,
            category=Category.M_INTENSIVE,
            pattern=pattern,
            n_ctas=24,
            groups_per_cta=2,
            records_per_group=2,
            accesses_per_record=2,
            write_fraction=write_fraction,
            kernel_iterations=2,
            footprint_bytes=256 * 1024,
        )
    )


def tiny_config(**overrides):
    return baseline_mcm_gpu(n_gpms=4, sms_per_gpm=2, **overrides)


class TestBitIdentity:
    def test_result_unchanged_by_attached_probe(self):
        config = tiny_config()
        workload = tiny_workload()
        bare = simulate(workload, config)
        probed = simulate(workload, config, telemetry=Telemetry())
        assert bare == probed
        assert bare.to_dict() == probed.to_dict()

    def test_result_unchanged_with_tiny_windows(self):
        # Many boundary crossings must still not perturb timing.
        config = tiny_config()
        workload = tiny_workload()
        bare = simulate(workload, config)
        probed = simulate(workload, config, telemetry=Telemetry(window_cycles=64.0))
        assert bare.to_dict() == probed.to_dict()

    def test_detached_system_has_dormant_boundary(self):
        simulator = Simulator(tiny_config())
        simulator.run(tiny_workload())
        assert simulator.system.telemetry is None
        assert simulator.engine._next_sample == float("inf")

    def test_serial_and_parallel_suite_paths_match_with_profiling(self, monkeypatch):
        config = tiny_config()
        workloads = [tiny_workload("t-w1"), tiny_workload("t-w2", pattern="hotset")]
        plain = _run_suite_serial(config, workloads, None)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        profiled_serial = _run_suite_serial(config, workloads, None)
        profiled_parallel = run_suite_parallel(
            [config], workloads=workloads, max_workers=2, cache=None
        )[0]
        for name in plain:
            assert plain[name].to_dict() == profiled_serial[name].to_dict()
            assert plain[name].to_dict() == profiled_parallel[name].to_dict()

    def test_probe_reuse_across_runs_keeps_results_independent(self):
        config = tiny_config()
        probe = Telemetry()
        simulator = Simulator(config, telemetry=probe)
        first = simulator.run(tiny_workload("t-a"))
        simulator.run(tiny_workload("t-b", pattern="hotset"))
        again = simulator.run(tiny_workload("t-a"))
        assert first.to_dict() == again.to_dict()
        assert probe.meta["workload"] == "t-a"  # probe holds the latest run


class TestRecording:
    def test_windowed_timeline_nonempty_for_suite_workload(self):
        probe = Telemetry(window_cycles=512.0)
        simulate("Stream", tiny_config(), telemetry=probe)
        assert len(probe.windows) > 1
        assert sum(window.records for window in probe.windows) > 0
        # Windows tile the run: contiguous, ending at the final makespan.
        for earlier, later in zip(probe.windows, probe.windows[1:]):
            assert later.start == earlier.end
        assert probe.windows[-1].end == pytest.approx(probe.meta["cycles"])

    def test_window_totals_match_end_of_run_counters(self):
        probe = Telemetry(window_cycles=256.0)
        result = simulate(tiny_workload(), tiny_config(), telemetry=probe)
        assert sum(w.records for w in probe.windows) == result.records
        assert sum(w.loads for w in probe.windows) == result.loads
        assert sum(w.stores for w in probe.windows) == result.stores
        assert sum(w.l1_hits for w in probe.windows) == result.l1.hits
        assert sum(w.l2_misses for w in probe.windows) == result.l2.misses
        assert sum(w.link_bytes for w in probe.windows) == result.link_bytes

    def test_kernel_phases_recorded(self):
        probe = Telemetry()
        result = simulate(tiny_workload(), tiny_config(), telemetry=probe)
        assert len(probe.phases) == result.kernels
        assert [phase.index for phase in probe.phases] == list(range(result.kernels))
        assert sum(phase.ctas for phase in probe.phases) == result.ctas
        assert sum(phase.records for phase in probe.phases) == result.records
        for phase in probe.phases:
            assert phase.end_cycle >= phase.start_cycle
            assert phase.quiesce_end_cycle >= phase.end_cycle
            assert phase.quiesce_tail >= 0.0

    def test_pipe_occupancy_collected_from_bucket_maps(self):
        probe = Telemetry()
        simulate(tiny_workload(), tiny_config(), telemetry=probe)
        assert probe.pipe_occupancy  # DRAM pipes at minimum
        assert any("dram" in name for name in probe.pipe_occupancy)
        for data in probe.pipe_occupancy.values():
            for start, occupied in data["series"]:
                assert occupied > 0
                assert occupied <= data["window_capacity"] * (1 + 1e-9)

    def test_summary_is_picklable_and_complete(self):
        import pickle

        probe = Telemetry()
        simulate(tiny_workload(), tiny_config(), telemetry=probe)
        summary = pickle.loads(pickle.dumps(probe.summary()))
        assert summary["workload"] == "t-w"
        assert summary["cycles"] > 0
        assert summary["windows"] == len(probe.windows)
        assert 0.0 <= summary["peak_pipe_occupancy"] <= 1.0 + 1e-9
        assert 0.0 <= summary["issue_utilization"] <= 1.0

    def test_window_cycles_must_be_positive(self):
        with pytest.raises(ValueError, match="window_cycles"):
            Telemetry(window_cycles=0)


class TestExporters:
    def test_chrome_trace_is_schema_valid(self, tmp_path):
        probe = Telemetry(window_cycles=512.0)
        simulate("Stream", tiny_config(), telemetry=probe)
        path = tmp_path / "trace.json"
        write_chrome_trace(probe, path)
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ph"] in ("M", "X", "C")
            assert isinstance(event["pid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
                assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] > 0
            if event["ph"] == "C":
                assert "value" in event["args"]
        phases = [e for e in events if e["ph"] == "X" and e["cat"] == "kernel"]
        assert len(phases) == len(probe.phases)

    def test_json_timeline_round_trips(self, tmp_path):
        probe = Telemetry()
        simulate(tiny_workload(), tiny_config(), telemetry=probe)
        path = tmp_path / "timeline.json"
        write_json_timeline(probe, path)
        data = json.loads(path.read_text())
        assert data["meta"]["workload"] == "t-w"
        assert len(data["windows"]) == len(probe.windows)
        assert len(data["kernel_phases"]) == len(probe.phases)
        assert set(data["pipe_occupancy"]) == set(probe.pipe_occupancy)

    def test_timeline_dict_matches_live_objects(self):
        probe = Telemetry()
        simulate(tiny_workload(), tiny_config(), telemetry=probe)
        data = timeline_dict(probe)
        assert data["summary"] == probe.summary()
        first = data["windows"][0]
        assert first["l2_hit_rate"] == probe.windows[0].l2_hit_rate

    def test_text_report_mentions_key_sections(self):
        probe = Telemetry()
        simulate(tiny_workload(), optimized_mcm_gpu(), telemetry=probe)
        report = text_report(probe)
        assert "telemetry: t-w on" in report
        assert "kernel phases" in report
        assert "peak pipe occupancy" in report


class TestProfilingIntegration:
    def test_profiling_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profiling_enabled()

    def test_run_suites_ships_summaries_to_metrics(self, monkeypatch):
        from repro.parallel import metrics as metrics_mod

        fresh = SuiteMetrics()
        monkeypatch.setattr(metrics_mod, "GLOBAL_METRICS", fresh)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        workloads = [tiny_workload("t-m1"), tiny_workload("t-m2", pattern="hotset")]
        run_suites([tiny_config()], workloads=workloads, cache=None)
        assert len(fresh.telemetry_summaries) == 2
        assert {s["workload"] for s in fresh.telemetry_summaries} == {"t-m1", "t-m2"}
        report = fresh.report()
        assert "profiled 2 runs" in report

    def test_parallel_workers_ship_summaries(self, monkeypatch):
        from repro.parallel import metrics as metrics_mod

        fresh = SuiteMetrics()
        monkeypatch.setattr(metrics_mod, "GLOBAL_METRICS", fresh)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        workloads = [tiny_workload("t-p1"), tiny_workload("t-p2", pattern="hotset")]
        run_suite_parallel([tiny_config()], workloads=workloads, max_workers=2, cache=None)
        assert len(fresh.telemetry_summaries) == 2
        for summary in fresh.telemetry_summaries:
            assert summary["cycles"] > 0

    def test_no_summaries_without_profile_flag(self, monkeypatch):
        from repro.parallel import metrics as metrics_mod

        fresh = SuiteMetrics()
        monkeypatch.setattr(metrics_mod, "GLOBAL_METRICS", fresh)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        run_suites([tiny_config()], workloads=[tiny_workload("t-n1")], cache=None)
        assert fresh.telemetry_summaries == []
